package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// WorkerOptions configures one elastic worker process.
type WorkerOptions struct {
	// Addr is the master's address.
	Addr string
	// Spec is the problem identity sent in the join handshake. Its
	// partition sizes override the ones in Run, so every member computes
	// the geometry the master dispatched against. The zero Spec sends no
	// digest (the master may still refuse unchecked joins).
	Spec Spec
	// Name labels this member in the master's logs and metrics.
	Name string
	// HeartbeatInterval is the beacon period; it must match (or undercut)
	// the master's, since the master's death threshold is measured in its
	// own intervals (default 250 ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss sizes the worker-side read-idle bound: the master
	// echoes every beacon, so a link silent for HeartbeatMiss+1 intervals
	// means the master is gone (default 3).
	HeartbeatMiss int
	// DialTimeout bounds dialing plus handshake (default 10 s); dialing
	// retries within it, so workers may start before the master.
	DialTimeout time.Duration
	// Run carries the worker-local compute configuration: Threads,
	// ThreadPartition, WorkDelayPerCell and the other thread-level knobs
	// of core.Config. Partition sizes are overridden from Spec when set.
	Run core.Config
	// TaskDelay, when non-nil, is consulted before each task executes and
	// the worker sleeps the returned duration — the fault-injection
	// harness's hook for slowing a member down.
	TaskDelay func() time.Duration
	// HungerAfter, when positive, announces hunger to the master after
	// this long without a task arriving: the worker's pool has drained
	// and it volunteers to have queued work stolen toward it (the master
	// acts only when its Steal option is on). Zero disables.
	HungerAfter time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMiss < 1 {
		o.HeartbeatMiss = 3
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	return o
}

// RunWorker joins the elastic cluster at opts.Addr and computes tasks
// until the master dismisses it (nil), the connection dies (error), or
// ctx is cancelled — a cancellation sends a Leave frame first, so the
// master reassigns this member's work immediately instead of waiting out
// the heartbeat deadline.
func RunWorker[T any](ctx context.Context, p core.Problem[T], opts WorkerOptions) error {
	opts = opts.withDefaults()
	cfg := opts.Run
	if opts.Spec.Proc.Valid() {
		cfg.ProcPartition = opts.Spec.Proc
	}
	if opts.Spec.Thread.Valid() {
		cfg.ThreadPartition = opts.Spec.Thread
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	runner, err := core.NewTaskRunner(p, cfg)
	if err != nil {
		return err
	}
	digest := ""
	if opts.Spec != (Spec{}) {
		digest = opts.Spec.Digest()
	}
	cn, welcome, err := comm.DialHello(opts.Addr, comm.Hello{
		Digest:  digest,
		Elastic: true,
		Name:    opts.Name,
	}, opts.DialTimeout)
	if err != nil {
		return err
	}
	defer cn.Close()
	member := welcome.Member
	idle := time.Duration(opts.HeartbeatMiss+1) * opts.HeartbeatInterval
	cn.SetReadIdle(idle)
	cn.SetWriteTimeout(idle)

	stop := make(chan struct{})
	defer close(stop)

	// Beacon: prove liveness to the master and provoke the echoes that
	// feed this side's read-idle bound.
	go func() {
		ticker := time.NewTicker(opts.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				if cn.Send(comm.Message{Kind: comm.KindHeartbeat}) != nil {
					return
				}
			}
		}
	}()
	// Graceful leave on cancellation: the Leave frame goes out, then the
	// connection closes to unblock the Recv below.
	go func() {
		select {
		case <-stop:
		case <-ctx.Done():
			_ = cn.Send(comm.Message{Kind: comm.KindLeave})
			cn.Close()
		}
	}()

	// Hunger beacon: when no task has arrived for HungerAfter, tell the
	// master this member's pool has drained so it can steal queued work
	// toward it. The recv loop feeds activity on every task receipt and
	// completion; the beacon re-arms while idleness persists.
	var activity chan struct{}
	if opts.HungerAfter > 0 {
		activity = make(chan struct{}, 1)
		go func() {
			timer := time.NewTimer(opts.HungerAfter)
			defer timer.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-activity:
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					timer.Reset(opts.HungerAfter)
				case <-timer.C:
					if cn.Send(comm.Message{Kind: comm.KindHunger}) != nil {
						return
					}
					timer.Reset(opts.HungerAfter)
				}
			}
		}()
	}
	noteActivity := func() {
		if activity != nil {
			select {
			case activity <- struct{}{}:
			default:
			}
		}
	}

	if err := cn.Send(comm.Message{Kind: comm.KindIdle}); err != nil {
		return fmt.Errorf("cluster: member %d announcing idle: %w", member, err)
	}
	for {
		msg, err := cn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("cluster: member %d lost master: %w", member, err)
		}
		switch msg.Kind {
		case comm.KindTask:
			noteActivity()
			if opts.TaskDelay != nil {
				if d := opts.TaskDelay(); d > 0 {
					time.Sleep(d)
				}
			}
			out, err := runner.Run(msg.Vertex, msg.Payload)
			if err != nil {
				// A compute failure is fatal for this member; dying loudly
				// lets the master's revocation path reassign the vertex.
				return fmt.Errorf("cluster: member %d computing vertex %d: %w", member, msg.Vertex, err)
			}
			if err := cn.Send(comm.Message{Kind: comm.KindResult, Vertex: msg.Vertex, Attempt: msg.Attempt, Payload: out}); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("cluster: member %d sending result of vertex %d: %w", member, msg.Vertex, err)
			}
			noteActivity() // idleness starts at completion
		case comm.KindTaskBatch:
			noteActivity()
			// Entries are mutually independent; execute them in order
			// through the same runner, flushing coalesced results every
			// flushBound entries. Non-final flushes carry More so the
			// master does not re-arm this member's sender mid-batch.
			flushBound := opts.Run.Batch
			if flushBound < 1 {
				flushBound = 1
			}
			var results []comm.TaskEntry
			for idx, e := range msg.Batch {
				if opts.TaskDelay != nil {
					if d := opts.TaskDelay(); d > 0 {
						time.Sleep(d)
					}
				}
				out, err := runner.Run(e.Vertex, e.Payload)
				if err != nil {
					return fmt.Errorf("cluster: member %d computing vertex %d: %w", member, e.Vertex, err)
				}
				results = append(results, comm.TaskEntry{Vertex: e.Vertex, Attempt: e.Attempt, Payload: out})
				if len(results) >= flushBound && idx < len(msg.Batch)-1 {
					if err := cn.Send(comm.Message{Kind: comm.KindResultBatch, Batch: results, More: true}); err != nil {
						if ctx.Err() != nil {
							return ctx.Err()
						}
						return fmt.Errorf("cluster: member %d flushing batch results: %w", member, err)
					}
					results = nil
				}
			}
			var final comm.Message
			switch len(results) {
			case 0:
				final = comm.Message{Kind: comm.KindIdle}
			case 1:
				final = comm.Message{Kind: comm.KindResult, Vertex: results[0].Vertex, Attempt: results[0].Attempt, Payload: results[0].Payload}
			default:
				final = comm.Message{Kind: comm.KindResultBatch, Batch: results}
			}
			if err := cn.Send(final); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("cluster: member %d sending batch results: %w", member, err)
			}
			noteActivity() // idleness starts at completion
		case comm.KindHeartbeat:
			// The master's echo of our beacon; its arrival already reset
			// the read-idle clock.
		case comm.KindEnd:
			return nil
		default:
			// An unexpected kind on an ordered connection means protocol
			// corruption or version skew; die loudly so the master's
			// revocation path reassigns this member's leases.
			return fmt.Errorf("cluster: member %d received unexpected %v frame", member, msg.Kind)
		}
	}
}
