package cluster

import (
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/trace"
)

func TestRegistryLifecycle(t *testing.T) {
	tr := trace.New()
	r := NewRegistry(tr, nil)

	a := r.Admit("", "1.2.3.4:5")
	b := r.Admit("custom", "6.7.8.9:0")
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d,%d, want 1,2", a.ID, b.ID)
	}
	if a.Name != "worker-1" || b.Name != "custom" {
		t.Fatalf("names = %q,%q", a.Name, b.Name)
	}
	if got := r.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}

	// One silent interval: suspect. A beat recovers. Miss intervals: dead.
	interval, miss := 100*time.Millisecond, 3
	now := time.Now()
	if died := r.Sweep(now.Add(150*time.Millisecond), interval, miss); len(died) != 0 {
		t.Fatalf("early sweep declared %v dead", died)
	}
	if m := r.Members()[0]; m.State != StateSuspect {
		t.Fatalf("member 1 = %v after one silent interval, want suspect", m.State)
	}
	r.Beat(a.ID)
	if m := r.Members()[0]; m.State != StateActive {
		t.Fatalf("member 1 = %v after beat, want active", m.State)
	}
	died := r.Sweep(now.Add(time.Hour), interval, miss)
	if len(died) != 2 {
		t.Fatalf("full-silence sweep declared %v dead, want both", died)
	}
	if r.Live() != 0 {
		t.Fatalf("Live = %d after sweep, want 0", r.Live())
	}
	// Dead is terminal: beats and re-marks are no-ops.
	r.Beat(a.ID)
	if m := r.Members()[0]; m.State != StateDead {
		t.Fatalf("dead member revived by beat: %v", m.State)
	}
	if r.MarkDead(a.ID) {
		t.Fatal("MarkDead on a dead member reported a transition")
	}
	if r.MarkLeft(a.ID) {
		t.Fatal("MarkLeft on a dead member reported a transition")
	}

	c := r.Admit("", "x")
	if c.ID != 3 {
		t.Fatalf("incarnation reused: id = %d, want 3", c.ID)
	}
	if !r.MarkLeft(c.ID) {
		t.Fatal("MarkLeft on a live member failed")
	}

	joins, leaves, deaths, _, _ := r.MembershipCounts()
	if joins != 3 || leaves != 1 || deaths != 2 {
		t.Fatalf("counters joins=%d leaves=%d deaths=%d, want 3,1,2", joins, leaves, deaths)
	}
	s := r.Metrics()
	if s.States["dead"] != 2 || s.States["left"] != 1 {
		t.Fatalf("metrics states = %v", s.States)
	}

	// Every transition must be visible in the trace: three admissions
	// plus one suspect recovery ("active"), two suspicions from the first
	// sweep, two deaths, one leave.
	counts := map[string]int{}
	for _, e := range tr.MemberEvents() {
		counts[e.Label]++
	}
	if counts["active"] != 4 || counts["suspect"] != 2 || counts["dead"] != 2 || counts["left"] != 1 {
		t.Fatalf("trace transition counts = %v, want active:4 suspect:2 dead:2 left:1", counts)
	}
}

func TestLeaseTable(t *testing.T) {
	lt := newLeaseTable(nil)
	lt.grant(1, 10, 1)
	lt.grant(2, 10, 1)
	lt.grant(3, 11, 1)
	if lt.len() != 3 {
		t.Fatalf("len = %d, want 3", lt.len())
	}
	// Redistribution supersedes the old holder.
	lt.grant(1, 11, 2)
	if hs := lt.holders(1); len(hs) != 1 || hs[0].Worker != 11 || hs[0].Attempt != 2 {
		t.Fatalf("holders(1) = %+v, want member 11 attempt 2", hs)
	}
	// The superseded member no longer owns vertex 1.
	revoked := lt.revokeMember(10)
	if len(revoked) != 1 || revoked[0].Vertex != 2 {
		t.Fatalf("revokeMember(10) = %+v, want only vertex 2", revoked)
	}
	if ls := lt.release(3); len(ls) != 1 || ls[0].Worker != 11 {
		t.Fatalf("release(3) = %+v", ls)
	}
	if ls := lt.release(3); len(ls) != 0 {
		t.Fatal("double release succeeded")
	}
	if lt.len() != 1 {
		t.Fatalf("len = %d after revoke+release, want 1", lt.len())
	}
}

func TestSpecDigest(t *testing.T) {
	s := Spec{App: "editdist", N: 64, Seed: 51, Proc: dag.Square(8)}
	if s.Digest() != s.Digest() {
		t.Fatal("digest is not deterministic")
	}
	for name, other := range map[string]Spec{
		"app":  {App: "nussinov", N: 64, Seed: 51, Proc: dag.Square(8)},
		"n":    {App: "editdist", N: 65, Seed: 51, Proc: dag.Square(8)},
		"seed": {App: "editdist", N: 64, Seed: 52, Proc: dag.Square(8)},
		"proc": {App: "editdist", N: 64, Seed: 51, Proc: dag.Square(16)},
	} {
		if other.Digest() == s.Digest() {
			t.Fatalf("digest insensitive to %s", name)
		}
	}
}
