package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// Master is the elastic counterpart of core.RunMaster: it owns the
// processor-level DAG and block store like the fixed master, but its
// worker set is a live membership table instead of a rank range — workers
// join, leave and die at any time while the DAG keeps draining.
//
// Work tracking is layered over the same internal/sched machinery the
// fixed master uses: the register table makes result acceptance
// idempotent per attempt, the overtime queue redistributes slow vertices,
// and on top of both the lease table binds every in-flight vertex to a
// member incarnation so that member death revokes and reassigns exactly
// the vertices that died with it — without waiting for their timeouts.
type Master[T any] struct {
	p      core.Problem[T]
	opts   Options
	digest string

	ln     net.Listener
	geom   dag.Geometry
	graph  *dag.Graph
	parser *dag.Parser
	store  matrix.BlockStore[T]
	rt     *sched.RegisterTable
	ot     *sched.OvertimeQueue
	disp   sched.Dispatcher
	leases *leaseTable
	reg    *Registry

	ckpt     *checkpoint.Writer
	ckptFile *os.File

	inbox chan event

	connMu sync.Mutex
	conns  map[int]*memberConn

	quorum     chan struct{}
	quorumOnce sync.Once

	done     chan struct{}
	doneOnce sync.Once
	errMu    sync.Mutex
	err      error

	ran                                 atomic.Bool
	tasks, dispatches, redist, restored atomic.Int64
	stale, batchMsgs, taskBytes         atomic.Int64
}

// event is one unit of the master's serialized input: a message from a
// member, or a connection-failure notice from its pump.
type event struct {
	member int
	msg    comm.Message
	down   bool
	err    error
}

// memberConn is the master-side endpoint of one member.
type memberConn struct {
	id       int
	cn       *comm.Conn
	idle     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

func (mc *memberConn) close() {
	mc.stopOnce.Do(func() {
		close(mc.stop)
		mc.cn.Close()
	})
}

// NewMaster builds the elastic master for problem p and starts listening
// on opts.Addr (use Addr to learn the bound address). Scheduling does not
// start until Run.
func NewMaster[T any](p core.Problem[T], opts Options) (*Master[T], error) {
	opts = opts.withDefaults()
	if p.Kernel == nil {
		return nil, fmt.Errorf("cluster: problem %q has no kernel", p.Name)
	}
	if p.Codec == nil {
		return nil, fmt.Errorf("cluster: problem %q has no codec", p.Name)
	}
	if !p.Size.Valid() {
		return nil, fmt.Errorf("cluster: invalid problem size %v", p.Size)
	}
	proc := opts.Spec.Proc
	if !proc.Valid() {
		// The same default rule core.Config applies, so master and
		// workers derive identical geometries from an unset partition.
		proc = dag.Size{Rows: (p.Size.Rows + 7) / 8, Cols: (p.Size.Cols + 7) / 8}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	geom := dag.MatrixGeometry(p.Size, proc)
	graph := dag.Build(p.Kernel.Pattern(), geom)
	m := &Master[T]{
		p:      p,
		opts:   opts,
		digest: opts.Spec.Digest(),
		ln:     ln,
		geom:   geom,
		graph:  graph,
		parser: dag.NewParser(graph),
		store:  matrix.NewStore[T](geom),
		rt:     sched.NewRegisterTable(),
		ot:     sched.NewOvertimeQueue(),
		disp:   sched.NewDynamic(),
		leases: newLeaseTable(),
		reg:    NewRegistry(opts.Trace),
		inbox:  make(chan event, 256),
		conns:  make(map[int]*memberConn),
		quorum: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opts.Spec == (Spec{}) {
		m.digest = "" // zero spec disables the admission digest check
	}
	return m, nil
}

// Addr returns the address the master listens on.
func (m *Master[T]) Addr() string { return m.ln.Addr().String() }

// Registry exposes the membership table (metrics, tests, the job
// service's /metrics exposition).
func (m *Master[T]) Registry() *Registry { return m.reg }

// finish ends the run exactly once, recording err (nil for success).
func (m *Master[T]) finish(err error) {
	m.doneOnce.Do(func() {
		m.errMu.Lock()
		m.err = err
		m.errMu.Unlock()
		close(m.done)
		m.disp.Close()
	})
}

// Run executes the run to completion: restore the checkpoint prefix,
// wait for the MinWorkers quorum, then schedule until the DAG drains.
// Cancelling ctx finishes the run with ctx's error; completed vertices
// are already persisted, so a later master resumes where this one
// stopped. Run may be called once per Master.
func (m *Master[T]) Run(ctx context.Context) (*Result[T], error) {
	if !m.ran.CompareAndSwap(false, true) {
		return nil, errors.New("cluster: Run called twice")
	}
	start := time.Now()
	defer m.teardown()

	if err := m.restore(); err != nil {
		m.finish(err)
		return nil, err
	}

	if cancel := ctx.Done(); cancel != nil {
		go func() {
			select {
			case <-cancel:
				m.finish(ctx.Err())
			case <-m.done:
			}
		}()
	}
	if m.opts.RunTimeout > 0 {
		timer := time.AfterFunc(m.opts.RunTimeout, func() {
			m.finish(fmt.Errorf("cluster: run exceeded RunTimeout %v with %d vertices remaining", m.opts.RunTimeout, m.parser.Remaining()))
		})
		defer timer.Stop()
	}

	go m.acceptLoop()

	var helpers sync.WaitGroup
	helpers.Add(1)
	go func() {
		defer helpers.Done()
		m.controlLoop()
	}()

	// The restore may have completed the whole DAG; otherwise wait for
	// the quorum before counting on progress.
	if !m.finished() {
		joinTimer := time.NewTimer(m.opts.JoinWindow)
		select {
		case <-m.quorum:
			joinTimer.Stop()
		case <-joinTimer.C:
			m.finish(fmt.Errorf("cluster: %d workers did not join within %v", m.opts.MinWorkers, m.opts.JoinWindow))
		case <-ctx.Done():
			joinTimer.Stop()
			m.finish(ctx.Err())
		case <-m.done:
			joinTimer.Stop()
		}
	}

	m.recvLoop()
	helpers.Wait()

	m.errMu.Lock()
	err := m.err
	m.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	joins, leaves, deaths, revoked, reassigned := m.reg.counters()
	return &Result[T]{
		Store: m.store,
		Stats: Stats{
			Tasks:           m.tasks.Load(),
			Dispatches:      m.dispatches.Load(),
			Redistributions: m.redist.Load(),
			Restored:        m.restored.Load(),
			StaleResults:    m.stale.Load(),
			Joins:           joins,
			Leaves:          leaves,
			Deaths:          deaths,
			LeasesRevoked:   revoked,
			Reassigned:      reassigned,
			BatchMessages:   m.batchMsgs.Load(),
			TaskBytes:       m.taskBytes.Load(),
			Elapsed:         time.Since(start),
		},
	}, nil
}

func (m *Master[T]) finished() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// teardown dismisses every member, stops listening and closes the
// checkpoint stream.
func (m *Master[T]) teardown() {
	m.ln.Close()
	m.connMu.Lock()
	conns := make([]*memberConn, 0, len(m.conns))
	for _, mc := range m.conns {
		conns = append(conns, mc)
	}
	m.connMu.Unlock()
	for _, mc := range conns {
		_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
		mc.close()
	}
	if m.ckptFile != nil {
		m.ckptFile.Close()
	}
}

// restore replays the checkpoint's clean prefix (truncating any torn
// tail) and hands the remaining computable frontier to the dispatcher.
// Without a checkpoint the frontier is the DAG roots.
func (m *Master[T]) restore() error {
	ready := make(map[int32]bool)
	for _, id := range m.parser.InitialReady() {
		ready[id] = true
	}
	if m.opts.CheckpointPath != "" {
		w, f, n, err := checkpoint.OpenAppend(m.opts.CheckpointPath, func(v int32, payload []byte) error {
			if int(v) < 0 || int(v) >= len(m.graph.Verts) || !m.graph.Vertex(v).Exists {
				return fmt.Errorf("cluster: checkpoint names unknown vertex %d", v)
			}
			if !ready[v] {
				return fmt.Errorf("cluster: checkpoint record for vertex %d out of order", v)
			}
			blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
			if err != nil || len(blocks) != 1 {
				return fmt.Errorf("cluster: checkpoint payload for vertex %d: %v", v, err)
			}
			m.store.Put(m.geom.PosOf(v), blocks[0])
			delete(ready, v)
			for _, nv := range m.parser.Complete(v) {
				ready[nv] = true
			}
			return nil
		})
		if err != nil {
			return err
		}
		m.ckpt, m.ckptFile, _ = w, f, n
		m.restored.Store(int64(n))
	}
	frontier := make([]int32, 0, len(ready))
	for id := range ready {
		frontier = append(frontier, id)
	}
	m.progress()
	m.disp.Ready(frontier...)
	if m.parser.Finished() {
		m.finish(nil)
	}
	return nil
}

// acceptLoop admits workers for the whole lifetime of the run: elastic
// join is just "the accept loop never stops".
func (m *Master[T]) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed in teardown
		}
		go m.admit(c)
	}
}

// admit performs the join handshake on one fresh connection and, on
// success, registers the member and starts its pump and sender.
func (m *Master[T]) admit(c net.Conn) {
	cn := comm.NewConn(c, 0)
	hello, err := cn.RecvHello(10 * time.Second)
	if err != nil {
		cn.Close()
		return
	}
	if reason := comm.CheckHello(hello, m.digest); reason != "" {
		cn.Reject(reason)
		return
	}
	if !hello.Elastic {
		cn.Reject("this master runs an elastic cluster; start the worker with -elastic (no -rank)")
		return
	}
	if m.finished() {
		cn.Reject("run already finished")
		return
	}
	member := m.reg.Admit(hello.Name, c.RemoteAddr().String())
	if err := cn.SendWelcome(comm.Welcome{Version: comm.ProtocolVersion, Member: member.ID}); err != nil {
		m.reg.MarkDead(member.ID)
		cn.Close()
		return
	}
	// A healthy member heartbeats every interval; its link may stay
	// silent for at most the death threshold plus one interval of slack
	// before the pump fails it. Sends get the same bound, so a peer that
	// stopped reading cannot wedge the master's loops.
	cn.SetReadIdle(time.Duration(m.opts.HeartbeatMiss+1) * m.opts.HeartbeatInterval)
	cn.SetWriteTimeout(time.Duration(m.opts.HeartbeatMiss+1) * m.opts.HeartbeatInterval)
	mc := &memberConn{
		id:   member.ID,
		cn:   cn,
		idle: make(chan struct{}, 4),
		stop: make(chan struct{}),
	}
	m.connMu.Lock()
	m.conns[member.ID] = mc
	live := len(m.conns)
	m.connMu.Unlock()
	if live >= m.opts.MinWorkers {
		m.quorumOnce.Do(func() { close(m.quorum) })
	}
	go m.pump(mc)
	go m.senderLoop(mc)
}

// pump reads one member's messages into the master inbox; a connection
// error becomes a down event (the fast path of failure detection —
// heartbeat loss is the slow path for wedged-but-open links).
func (m *Master[T]) pump(mc *memberConn) {
	for {
		msg, err := mc.cn.Recv()
		if err != nil {
			select {
			case m.inbox <- event{member: mc.id, down: true, err: err}:
			case <-m.done:
			}
			return
		}
		select {
		case m.inbox <- event{member: mc.id, msg: msg}:
		case <-m.done:
			return
		}
	}
}

// senderLoop dispatches work to one member whenever it is idle, mirroring
// the fixed master's per-slave sender.
func (m *Master[T]) senderLoop(mc *memberConn) {
	for {
		select {
		case <-mc.idle:
		case <-mc.stop:
			return
		case <-m.done:
			_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
			return
		}
		for {
			var ids []int32
			if m.opts.Batch > 1 {
				var ok bool
				ids, ok = m.disp.NextBatch(mc.id, m.opts.Batch)
				if !ok {
					_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
					return
				}
			} else {
				v, ok := m.disp.Next(mc.id)
				if !ok {
					_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
					return
				}
				ids = []int32{v}
			}
			select {
			case <-mc.stop:
				// The member died while this sender waited for work;
				// hand the vertices back for a live member.
				for _, v := range ids {
					m.disp.Requeue(v)
				}
				return
			default:
			}
			if m.dispatch(mc, ids) {
				break
			}
			// Every drawn vertex finished while queued for redistribution
			// (its result raced a revocation); take the next one without
			// consuming another idle token.
		}
	}
}

// dispatch leases the drawn vertices to member mc and ships their data
// regions in one message (a plain task for a single vertex, a task batch
// for several). Every vertex holds its own lease, so a member death
// mid-batch revokes and reassigns exactly the undone remainder. It
// returns false when every vertex turned out to be already finished.
func (m *Master[T]) dispatch(mc *memberConn, ids []int32) bool {
	now := time.Now()
	entries := make([]comm.TaskEntry, 0, len(ids))
	for _, v := range ids {
		attempt, ok := m.rt.Register(v)
		if !ok {
			continue
		}
		deps := m.graph.Vertex(v).DataPre
		positions := make([]dag.Pos, len(deps))
		for k, d := range deps {
			positions[k] = m.geom.PosOf(d)
		}
		blocks := m.store.Gather(positions)
		payload, err := matrix.EncodeBlocks(m.p.Codec, blocks)
		if err != nil {
			m.finish(fmt.Errorf("cluster: encoding data region of vertex %d: %w", v, err))
			return true
		}
		m.leases.grant(v, mc.id, attempt)
		// Batch entries execute sequentially on the member, so entry i's
		// overtime deadline scales with its position; a healthy deep
		// entry must not be redistributed just for waiting its turn.
		m.ot.Add(v, attempt, now.Add(m.opts.TaskTimeout*time.Duration(len(entries)+1)))
		m.opts.Trace.TaskStart(mc.id, v)
		m.dispatches.Add(1)
		entries = append(entries, comm.TaskEntry{Vertex: v, Attempt: attempt, Payload: payload})
	}
	if len(entries) == 0 {
		return false
	}
	bytes := 0
	for _, e := range entries {
		bytes += len(e.Payload)
	}
	m.taskBytes.Add(int64(bytes))
	m.opts.Trace.Dispatch(mc.id, len(entries), bytes)
	var msg comm.Message
	if len(entries) == 1 {
		msg = comm.Message{Kind: comm.KindTask, Vertex: entries[0].Vertex, Attempt: entries[0].Attempt, Payload: entries[0].Payload}
	} else {
		m.batchMsgs.Add(1)
		msg = comm.Message{Kind: comm.KindTaskBatch, Batch: entries}
	}
	if err := mc.cn.Send(msg); err != nil {
		// The pump (or heartbeat sweep) will revoke this member's
		// leases, including the ones just granted; nothing to unwind.
		select {
		case m.inbox <- event{member: mc.id, down: true, err: err}:
		case <-m.done:
		}
	}
	return true
}

// recvLoop serializes membership and result handling until the run ends.
func (m *Master[T]) recvLoop() {
	for {
		select {
		case <-m.done:
			return
		case ev := <-m.inbox:
			if ev.down {
				m.memberDown(ev.member, ev.err)
				continue
			}
			m.reg.Beat(ev.member) // any traffic proves liveness
			switch ev.msg.Kind {
			case comm.KindIdle:
				m.signalIdle(ev.member)
			case comm.KindHeartbeat:
				m.echoHeartbeat(ev.member)
			case comm.KindLeave:
				m.memberLeave(ev.member)
			case comm.KindResult:
				m.applyResult(ev.member, ev.msg.Vertex, ev.msg.Attempt, ev.msg.Payload)
				// More marks a partial flush of a still-executing
				// batch; the member is not idle yet.
				if !ev.msg.More {
					m.signalIdle(ev.member)
				}
			case comm.KindResultBatch:
				for _, e := range ev.msg.Batch {
					m.applyResult(ev.member, e.Vertex, e.Attempt, e.Payload)
				}
				if !ev.msg.More {
					m.signalIdle(ev.member)
				}
			}
		}
	}
}

func (m *Master[T]) signalIdle(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	m.connMu.Unlock()
	if mc == nil {
		return
	}
	select {
	case mc.idle <- struct{}{}:
	default:
	}
}

// echoHeartbeat answers a worker beacon, giving the worker's read-idle
// bound the periodic traffic it needs to distinguish a slow master from
// a dead one.
func (m *Master[T]) echoHeartbeat(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	m.connMu.Unlock()
	if mc != nil {
		_ = mc.cn.Send(comm.Message{Kind: comm.KindHeartbeat})
	}
}

// applyResult commits one computed vertex — the per-vertex core of result
// handling, shared by the single-result and batched paths.
func (m *Master[T]) applyResult(member int, v, attempt int32, payload []byte) {
	if !m.rt.Accept(v, attempt) {
		// A superseded attempt: the vertex was revoked (member declared
		// dead, or overtime) and reassigned; drop the late answer.
		m.stale.Add(1)
		return
	}
	m.ot.Remove(v)
	m.leases.release(v)
	blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
	if err != nil || len(blocks) != 1 {
		m.finish(fmt.Errorf("cluster: bad result payload for vertex %d from member %d: %v", v, member, err))
		return
	}
	m.store.Put(m.geom.PosOf(v), blocks[0])
	m.reg.NoteCompleted(member)
	m.opts.Trace.TaskEnd(member, v)
	m.tasks.Add(1)
	if m.ckpt != nil {
		if err := m.ckpt.Append(v, payload); err != nil {
			m.finish(err)
			return
		}
	}
	newly := m.parser.Complete(v)
	m.progress()
	m.disp.Ready(newly...)
	m.opts.Trace.Ready(m.disp.ReadyCount())
	if m.parser.Finished() {
		m.finish(nil)
	}
}

func (m *Master[T]) progress() {
	if m.opts.OnProgress == nil {
		return
	}
	m.opts.OnProgress(m.graph.N-m.parser.Remaining(), m.graph.N)
}

// memberDown declares a member dead and reassigns its leased vertices.
// It is idempotent: the pump, a failed send and the heartbeat sweep may
// all report the same member.
func (m *Master[T]) memberDown(member int, cause error) {
	if !m.reg.MarkDead(member) {
		return
	}
	_ = cause
	m.revoke(member)
}

// memberLeave handles a graceful departure: same lease revocation, nicer
// bookkeeping.
func (m *Master[T]) memberLeave(member int) {
	if !m.reg.MarkLeft(member) {
		return
	}
	m.revoke(member)
}

// revoke tears down a member's connection and puts its leased vertices
// back on the ready stack for live members. Death-triggered revocations
// deliberately do not count toward MaxAttempts — an elastic cluster must
// survive any number of worker failures as long as capacity remains; the
// MaxAttempts guard stays on the overtime path, where repeated timeouts
// of the same vertex indicate a poisoned task rather than lost hardware.
func (m *Master[T]) revoke(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	delete(m.conns, member)
	m.connMu.Unlock()
	if mc != nil {
		mc.close()
	}
	leases := m.leases.revokeMember(member)
	for _, l := range leases {
		m.rt.Cancel(l.Vertex)
		m.disp.Requeue(l.Vertex)
	}
	m.reg.noteRevoked(len(leases), len(leases))
	if len(leases) > 0 {
		m.opts.Trace.Ready(m.disp.ReadyCount())
	}
}

// controlLoop is the fault-tolerance thread of the elastic master: it
// applies heartbeat deadlines to the membership table and overtime
// deadlines to in-flight vertices.
func (m *Master[T]) controlLoop() {
	ticker := time.NewTicker(m.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case now := <-ticker.C:
			for _, id := range m.reg.Sweep(now, m.opts.HeartbeatInterval, m.opts.HeartbeatMiss) {
				// Sweep already marked it dead; revoke directly (the
				// MarkDead in memberDown would see a dead member and
				// skip).
				m.revoke(id)
			}
			for _, e := range m.ot.ExpireBefore(now) {
				m.rt.Cancel(e.ID)
				m.leases.release(e.ID)
				if int(m.rt.Attempts(e.ID)) >= m.opts.MaxAttempts {
					m.finish(fmt.Errorf("cluster: vertex %d timed out %d times (MaxAttempts); giving up", e.ID, e.Attempt))
					return
				}
				m.redist.Add(1)
				m.disp.Requeue(e.ID)
			}
		}
	}
}
