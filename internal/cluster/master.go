package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tune"
)

// Master is the elastic counterpart of core.RunMaster: it owns the
// processor-level DAG and block store like the fixed master, but its
// worker set is a live membership table instead of a rank range — workers
// join, leave and die at any time while the DAG keeps draining.
//
// Work tracking is layered over the same internal/sched machinery the
// fixed master uses: the register table makes result acceptance
// idempotent per attempt, the overtime queue redistributes slow vertices,
// and on top of both the lease table binds every in-flight vertex to a
// member incarnation so that member death revokes and reassigns exactly
// the vertices that died with it — without waiting for their timeouts.
type Master[T any] struct {
	p      core.Problem[T]
	opts   Options
	digest string

	ln      net.Listener
	geom    dag.Geometry
	graph   *dag.Graph
	parser  *dag.Parser
	store   matrix.BlockStore[T]
	rt      *sched.RegisterTable
	ot      *sched.OvertimeQueue
	disp    sched.Dispatcher
	leases  *leaseTable
	reg     *Registry
	clock   sched.Clock
	profile *sched.RuntimeProfile

	// Speculation bookkeeping: specPending marks vertices the control
	// loop has flagged for a backup dispatch (the next sender to draw
	// them issues a RegisterBackup instead of a superseding Register);
	// backupOf remembers the live backup attempt per vertex so the
	// arbitration outcome (won vs wasted) can be classified when the
	// race resolves.
	specMu      sync.Mutex
	specPending map[int32]bool
	backupOf    map[int32]int32

	ckpt     *checkpoint.Writer
	ckptFile *os.File

	// Cross-job cache (nil when disabled). resultKey[v] is the content
	// key of v's committed payload, written by the recv loop (or restore)
	// before the dispatcher publishes v's successors, and read by
	// blockKey when a successor commits — the dispatcher's internal
	// ordering provides the happens-before edge.
	cache     *cas.Store
	cacheSpec string
	resultKey []cas.Key

	inbox chan event

	connMu sync.Mutex
	conns  map[int]*memberConn

	quorum     chan struct{}
	quorumOnce sync.Once

	done     chan struct{}
	doneOnce sync.Once
	errMu    sync.Mutex
	err      error

	ran  atomic.Bool
	ctrs Counters

	// tuner is the self-tuning controller, non-nil iff Options.Auto.
	// hungers counts hunger beacons received (the recv loop adds, the
	// control loop reads) — the starvation signal the tuner's AIMD
	// batch rule decreases on.
	tuner   *tune.Controller
	hungers atomic.Int64

	// onTick, when non-nil, runs at the end of every control-loop tick,
	// after sweep, overtime expiry and speculation have all been applied
	// for that tick — a deterministic wait point for FakeClock tests.
	onTick func()
}

// noteDeath reports a declared death to the OnDeath hook, if any.
func (m *Master[T]) noteDeath(member int) {
	if m.opts.OnDeath != nil {
		m.opts.OnDeath(member)
	}
}

// event is one unit of the master's serialized input: a message from a
// member, or a connection-failure notice from its pump.
type event struct {
	member int
	msg    comm.Message
	down   bool
	err    error
}

// memberConn is the master-side endpoint of one member.
type memberConn struct {
	id       int
	cn       *comm.Conn
	idle     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

func (mc *memberConn) close() {
	mc.stopOnce.Do(func() {
		close(mc.stop)
		mc.cn.Close()
	})
}

// NewMaster builds the elastic master for problem p and starts listening
// on opts.Addr (use Addr to learn the bound address). Scheduling does not
// start until Run.
func NewMaster[T any](p core.Problem[T], opts Options) (*Master[T], error) {
	opts = opts.withDefaults()
	if p.Kernel == nil {
		return nil, fmt.Errorf("cluster: problem %q has no kernel", p.Name)
	}
	if p.Codec == nil {
		return nil, fmt.Errorf("cluster: problem %q has no codec", p.Name)
	}
	if !p.Size.Valid() {
		return nil, fmt.Errorf("cluster: invalid problem size %v", p.Size)
	}
	proc := opts.Spec.Proc
	if !proc.Valid() {
		// The same default rule core.Config applies, so master and
		// workers derive identical geometries from an unset partition.
		proc = dag.Size{Rows: (p.Size.Rows + 7) / 8, Cols: (p.Size.Cols + 7) / 8}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	geom := dag.MatrixGeometry(p.Size, proc)
	graph := dag.Build(p.Kernel.Pattern(), geom)
	m := &Master[T]{
		p:           p,
		opts:        opts,
		digest:      opts.Spec.Digest(),
		ln:          ln,
		geom:        geom,
		graph:       graph,
		parser:      dag.NewParser(graph),
		store:       matrix.NewStore[T](geom),
		rt:          sched.NewRegisterTable(),
		ot:          sched.NewOvertimeQueueClock(opts.Clock),
		disp:        sched.NewDynamic(),
		leases:      newLeaseTable(opts.Clock),
		reg:         NewRegistry(opts.Trace, opts.Clock),
		clock:       opts.Clock,
		profile:     sched.NewRuntimeProfile(0),
		specPending: make(map[int32]bool),
		backupOf:    make(map[int32]int32),
		inbox:       make(chan event, 256),
		conns:       make(map[int]*memberConn),
		quorum:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	if opts.Spec == (Spec{}) {
		m.digest = "" // zero spec disables the admission digest check
	}
	if opts.Auto {
		m.tuner = tune.New(tune.DefaultLimits(), opts.Batch,
			opts.SpecQuantile, opts.SpecMultiplier, opts.SpecMinSamples)
	}
	if opts.Cache != nil && opts.CacheKey != "" {
		m.cache = opts.Cache
		m.cacheSpec = opts.CacheKey
		m.resultKey = make([]cas.Key, len(graph.Verts))
	}
	return m, nil
}

// blockKey derives vertex v's cross-job cache key: the run's spec digest,
// the block's cell rectangle, and the content keys of its predecessors'
// committed payloads. Only called once every predecessor has committed.
func (m *Master[T]) blockKey(v int32) cas.Key {
	deps := m.graph.Vertex(v).DataPre
	preds := make([]cas.Key, len(deps))
	for i, d := range deps {
		preds[i] = m.resultKey[d]
	}
	r := m.geom.Rect(m.geom.PosOf(v))
	return cas.BlockKey(m.cacheSpec, r.Row0, r.Col0, r.Rows, r.Cols, preds)
}

// commit is the single write path for a completed block: store insert,
// content-key recording, cross-job cache write-through, and checkpoint
// append all happen here, so recovery log and cache can never diverge.
func (m *Master[T]) commit(v int32, payload []byte, b *matrix.Block[T]) error {
	m.store.Put(m.geom.PosOf(v), b)
	if m.cache != nil {
		m.resultKey[v] = cas.PayloadKey(payload)
		m.cache.PutBlock(m.blockKey(v), payload)
	}
	if m.ckpt != nil {
		return m.ckpt.Append(v, payload)
	}
	return nil
}

// absorbCached probes the cross-job cache for each newly computable
// vertex and commits hits in place, cascading through the vertices a hit
// opens. Returns the misses — what still needs dispatch. A corrupt entry
// degrades to a miss (recompute), never a wrong result.
func (m *Master[T]) absorbCached(ids []int32) []int32 {
	if m.cache == nil {
		return ids
	}
	var miss []int32
	work := append([]int32(nil), ids...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		payload, ok := m.cache.GetBlock(m.blockKey(v), cas.LayerMaster)
		var b *matrix.Block[T]
		if ok {
			blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
			if err == nil && len(blocks) == 1 {
				b = blocks[0]
			}
		}
		if b == nil {
			m.ctrs.CacheMisses.Add(1)
			miss = append(miss, v)
			continue
		}
		m.ctrs.CacheHits.Add(1)
		if err := m.commit(v, payload, b); err != nil {
			m.finish(err)
			return miss
		}
		work = append(work, m.parser.Complete(v)...)
		m.progress()
	}
	return miss
}

// Addr returns the address the master listens on.
func (m *Master[T]) Addr() string { return m.ln.Addr().String() }

// Registry exposes the membership table (metrics, tests, the job
// service's /metrics exposition).
func (m *Master[T]) Registry() *Registry { return m.reg }

// finish ends the run exactly once, recording err (nil for success).
func (m *Master[T]) finish(err error) {
	m.doneOnce.Do(func() {
		m.errMu.Lock()
		m.err = err
		m.errMu.Unlock()
		close(m.done)
		m.disp.Close()
	})
}

// Run executes the run to completion: restore the checkpoint prefix,
// wait for the MinWorkers quorum, then schedule until the DAG drains.
// Cancelling ctx finishes the run with ctx's error; completed vertices
// are already persisted, so a later master resumes where this one
// stopped. Run may be called once per Master.
func (m *Master[T]) Run(ctx context.Context) (*Result[T], error) {
	if !m.ran.CompareAndSwap(false, true) {
		return nil, errors.New("cluster: Run called twice")
	}
	start := time.Now()
	defer m.teardown()

	if err := m.restore(); err != nil {
		m.finish(err)
		return nil, err
	}

	if cancel := ctx.Done(); cancel != nil {
		go func() {
			select {
			case <-cancel:
				m.finish(ctx.Err())
			case <-m.done:
			}
		}()
	}
	if m.opts.RunTimeout > 0 {
		timer := time.AfterFunc(m.opts.RunTimeout, func() {
			m.finish(fmt.Errorf("cluster: run exceeded RunTimeout %v with %d vertices remaining", m.opts.RunTimeout, m.parser.Remaining()))
		})
		defer timer.Stop()
	}

	go m.acceptLoop()

	var helpers sync.WaitGroup
	helpers.Add(1)
	go func() {
		defer helpers.Done()
		m.controlLoop()
	}()

	// The restore may have completed the whole DAG; otherwise wait for
	// the quorum before counting on progress.
	if !m.finished() {
		joinTimer := time.NewTimer(m.opts.JoinWindow)
		select {
		case <-m.quorum:
			joinTimer.Stop()
		case <-joinTimer.C:
			m.finish(fmt.Errorf("cluster: %d workers did not join within %v", m.opts.MinWorkers, m.opts.JoinWindow))
		case <-ctx.Done():
			joinTimer.Stop()
			m.finish(ctx.Err())
		case <-m.done:
			joinTimer.Stop()
		}
	}

	m.recvLoop()
	helpers.Wait()

	m.errMu.Lock()
	err := m.err
	m.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	joins, leaves, deaths, revoked, reassigned := m.reg.MembershipCounts()
	stats := m.ctrs.Stats()
	stats.Joins = joins
	stats.Leaves = leaves
	stats.Deaths = deaths
	stats.LeasesRevoked = revoked
	stats.Reassigned = reassigned
	stats.Leaked = int64(m.rt.Outstanding() + m.leases.len())
	stats.Elapsed = time.Since(start)
	return &Result[T]{Store: m.store, Stats: stats}, nil
}

// Snapshot merges the registry's membership view with the master's
// straggler-mitigation counters — the monitoring surface the job
// service's /metrics exposition reads.
func (m *Master[T]) Snapshot() Snapshot {
	s := m.reg.Metrics()
	s.Speculated = m.ctrs.Speculated.Load()
	s.SpecWon = m.ctrs.SpecWon.Load()
	s.SpecWasted = m.ctrs.SpecWasted.Load()
	s.Steals = m.ctrs.Steals.Load()
	return s
}

// TuneSnapshot reports the self-tuner's current recommendations — what
// the /metrics exposition exports as easyhps_tune_* gauges. The zero
// snapshot (ok=false) means the master runs with static knobs.
func (m *Master[T]) TuneSnapshot() (tune.Snapshot, bool) {
	if m.tuner == nil {
		return tune.Snapshot{}, false
	}
	return m.tuner.Snapshot(), true
}

func (m *Master[T]) finished() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// teardown dismisses every member, stops listening and closes the
// checkpoint stream.
func (m *Master[T]) teardown() {
	m.ln.Close()
	m.connMu.Lock()
	conns := make([]*memberConn, 0, len(m.conns))
	for _, mc := range m.conns {
		conns = append(conns, mc)
	}
	m.connMu.Unlock()
	for _, mc := range conns {
		_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
		mc.close()
	}
	if m.ckptFile != nil {
		m.ckptFile.Close()
	}
}

// restore replays the checkpoint's clean prefix (truncating any torn
// tail) and hands the remaining computable frontier to the dispatcher.
// Without a checkpoint the frontier is the DAG roots.
func (m *Master[T]) restore() error {
	ready := make(map[int32]bool)
	for _, id := range m.parser.InitialReady() {
		ready[id] = true
	}
	if m.opts.CheckpointPath != "" {
		w, f, n, err := checkpoint.OpenAppend(m.opts.CheckpointPath, func(v int32, payload []byte) error {
			if int(v) < 0 || int(v) >= len(m.graph.Verts) || !m.graph.Vertex(v).Exists {
				return fmt.Errorf("cluster: checkpoint names unknown vertex %d", v)
			}
			if !ready[v] {
				return fmt.Errorf("cluster: checkpoint record for vertex %d out of order", v)
			}
			blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
			if err != nil || len(blocks) != 1 {
				return fmt.Errorf("cluster: checkpoint payload for vertex %d: %v", v, err)
			}
			// commit re-records the content key and warms the cross-job
			// cache; m.ckpt is still nil during OpenAppend's replay, so
			// nothing is double-appended.
			if err := m.commit(v, payload, blocks[0]); err != nil {
				return err
			}
			delete(ready, v)
			for _, nv := range m.parser.Complete(v) {
				ready[nv] = true
			}
			return nil
		})
		if err != nil {
			return err
		}
		m.ckpt, m.ckptFile, _ = w, f, n
		m.ctrs.Restored.Store(int64(n))
	}
	frontier := make([]int32, 0, len(ready))
	for id := range ready {
		frontier = append(frontier, id)
	}
	m.progress()
	frontier = m.absorbCached(frontier)
	m.disp.Ready(frontier...)
	if m.parser.Finished() {
		m.finish(nil)
	}
	return nil
}

// acceptLoop admits workers for the whole lifetime of the run: elastic
// join is just "the accept loop never stops".
func (m *Master[T]) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed in teardown
		}
		go m.admit(c)
	}
}

// admit performs the join handshake on one fresh connection and, on
// success, registers the member and starts its pump and sender.
func (m *Master[T]) admit(c net.Conn) {
	cn := comm.NewConn(c, 0)
	hello, err := cn.RecvHello(10 * time.Second)
	if err != nil {
		cn.Close()
		return
	}
	if reason := comm.CheckHello(hello, m.digest); reason != "" {
		cn.Reject(reason)
		return
	}
	if !hello.Elastic {
		cn.Reject("this master runs an elastic cluster; start the worker with -elastic (no -rank)")
		return
	}
	if m.finished() {
		cn.Reject("run already finished")
		return
	}
	member := m.reg.Admit(hello.Name, c.RemoteAddr().String())
	if err := cn.SendWelcome(comm.Welcome{Version: comm.ProtocolVersion, Member: member.ID}); err != nil {
		m.reg.MarkDead(member.ID)
		m.noteDeath(member.ID)
		cn.Close()
		return
	}
	// A healthy member heartbeats every interval; its link may stay
	// silent for at most the death threshold plus one interval of slack
	// before the pump fails it. Sends get the same bound, so a peer that
	// stopped reading cannot wedge the master's loops.
	cn.SetReadIdle(time.Duration(m.opts.HeartbeatMiss+1) * m.opts.HeartbeatInterval)
	cn.SetWriteTimeout(time.Duration(m.opts.HeartbeatMiss+1) * m.opts.HeartbeatInterval)
	mc := &memberConn{
		id:   member.ID,
		cn:   cn,
		idle: make(chan struct{}, 4),
		stop: make(chan struct{}),
	}
	m.connMu.Lock()
	m.conns[member.ID] = mc
	live := len(m.conns)
	m.connMu.Unlock()
	if live >= m.opts.MinWorkers {
		m.quorumOnce.Do(func() { close(m.quorum) })
	}
	go m.pump(mc)
	go m.senderLoop(mc)
}

// pump reads one member's messages into the master inbox; a connection
// error becomes a down event (the fast path of failure detection —
// heartbeat loss is the slow path for wedged-but-open links).
func (m *Master[T]) pump(mc *memberConn) {
	for {
		msg, err := mc.cn.Recv()
		if err != nil {
			select {
			case m.inbox <- event{member: mc.id, down: true, err: err}:
			case <-m.done:
			}
			return
		}
		select {
		case m.inbox <- event{member: mc.id, msg: msg}:
		case <-m.done:
			return
		}
	}
}

// senderLoop dispatches work to one member whenever it is idle, mirroring
// the fixed master's per-slave sender.
func (m *Master[T]) senderLoop(mc *memberConn) {
	for {
		select {
		case <-mc.idle:
		case <-mc.stop:
			return
		case <-m.done:
			_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
			return
		}
		for {
			var ids []int32
			if cap := m.batchCap(); cap > 1 {
				var ok bool
				ids, ok = m.disp.NextBatch(mc.id, cap)
				if !ok {
					_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
					return
				}
			} else {
				v, ok := m.disp.Next(mc.id)
				if !ok {
					_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
					return
				}
				ids = []int32{v}
			}
			select {
			case <-mc.stop:
				// The member died while this sender waited for work;
				// hand the vertices back for a live member.
				for _, v := range ids {
					m.disp.Requeue(v)
				}
				return
			default:
			}
			if m.dispatch(mc, ids) {
				break
			}
			// Every drawn vertex finished while queued for redistribution
			// (its result raced a revocation); take the next one without
			// consuming another idle token.
		}
	}
}

// dispatch leases the drawn vertices to member mc and ships their data
// regions in one message (a plain task for a single vertex, a task batch
// for several). Every vertex holds its own lease, so a member death
// mid-batch revokes and reassigns exactly the undone remainder. It
// returns false when every vertex turned out to be already finished.
//
// A vertex flagged by the speculation loop is dispatched as a backup: a
// concurrent attempt that does not supersede the original, so whichever
// result lands first wins and the loser is dropped by stamp.
func (m *Master[T]) dispatch(mc *memberConn, ids []int32) bool {
	now := m.clock.Now()
	entries := make([]comm.TaskEntry, 0, len(ids))
	for _, v := range ids {
		attempt, ok, backup := m.register(mc.id, v)
		if !ok {
			continue
		}
		deps := m.graph.Vertex(v).DataPre
		positions := make([]dag.Pos, len(deps))
		for k, d := range deps {
			positions[k] = m.geom.PosOf(d)
		}
		blocks := m.store.Gather(positions)
		payload, err := matrix.EncodeBlocks(m.p.Codec, blocks)
		if err != nil {
			m.finish(fmt.Errorf("cluster: encoding data region of vertex %d: %w", v, err))
			return true
		}
		// Batch entries execute sequentially on the member, so entry i's
		// overtime deadline scales with its position; a healthy deep
		// entry must not be redistributed just for waiting its turn.
		deadline := now.Add(m.opts.TaskTimeout * time.Duration(len(entries)+1))
		if backup {
			m.leases.add(v, mc.id, attempt)
			m.ot.AddConcurrent(v, attempt, deadline)
			m.ctrs.Speculated.Add(1)
			m.opts.Trace.Speculate(mc.id, v)
		} else {
			m.leases.grant(v, mc.id, attempt)
			m.ot.Add(v, attempt, deadline)
		}
		m.opts.Trace.TaskStart(mc.id, v)
		m.ctrs.Dispatches.Add(1)
		entries = append(entries, comm.TaskEntry{Vertex: v, Attempt: attempt, Payload: payload})
	}
	if len(entries) == 0 {
		return false
	}
	bytes := 0
	for _, e := range entries {
		bytes += len(e.Payload)
	}
	m.ctrs.TaskBytes.Add(int64(bytes))
	m.opts.Trace.Dispatch(mc.id, len(entries), bytes)
	var msg comm.Message
	if len(entries) == 1 {
		msg = comm.Message{Kind: comm.KindTask, Vertex: entries[0].Vertex, Attempt: entries[0].Attempt, Payload: entries[0].Payload}
	} else {
		m.ctrs.BatchMessages.Add(1)
		msg = comm.Message{Kind: comm.KindTaskBatch, Batch: entries}
	}
	if err := mc.cn.Send(msg); err != nil {
		// The pump (or heartbeat sweep) will revoke this member's
		// leases, including the ones just granted; nothing to unwind.
		select {
		case m.inbox <- event{member: mc.id, down: true, err: err}:
		case <-m.done:
		}
	}
	return true
}

// register claims an attempt of v for member. For an ordinary draw it is
// rt.Register; for a vertex flagged by the speculation loop it issues a
// concurrent backup attempt instead — unless the drawing member already
// holds a lease on v (it would be backing itself up), in which case the
// flag is dropped and the control loop may re-flag the vertex next tick.
func (m *Master[T]) register(member int, v int32) (attempt int32, ok, backup bool) {
	m.specMu.Lock()
	pending := m.specPending[v]
	delete(m.specPending, v)
	m.specMu.Unlock()
	if !pending {
		a, ok := m.rt.Register(v)
		return a, ok, false
	}
	for _, l := range m.leases.holders(v) {
		if l.Worker == member {
			return 0, false, false
		}
	}
	a, ok := m.rt.RegisterBackup(v)
	if !ok {
		// The original finished, or was cancelled, while the flag waited
		// in the ready queue; an uncovered unfinished vertex is always
		// re-dispatched through the normal requeue path, so nothing is
		// lost by skipping.
		return 0, false, false
	}
	m.specMu.Lock()
	m.backupOf[v] = a
	m.specMu.Unlock()
	return a, true, true
}

// recvLoop serializes membership and result handling until the run ends.
func (m *Master[T]) recvLoop() {
	for {
		select {
		case <-m.done:
			return
		case ev := <-m.inbox:
			if ev.down {
				m.memberDown(ev.member, ev.err)
				continue
			}
			m.reg.Beat(ev.member) // any traffic proves liveness
			switch ev.msg.Kind {
			case comm.KindIdle:
				m.signalIdle(ev.member)
			case comm.KindHeartbeat:
				m.echoHeartbeat(ev.member)
			case comm.KindLeave:
				m.memberLeave(ev.member)
			case comm.KindHunger:
				m.feedHungry(ev.member)
			case comm.KindResult:
				m.applyResult(ev.member, ev.msg.Vertex, ev.msg.Attempt, ev.msg.Payload)
				// More marks a partial flush of a still-executing
				// batch; the member is not idle yet.
				if !ev.msg.More {
					m.signalIdle(ev.member)
				}
			case comm.KindResultBatch:
				for _, e := range ev.msg.Batch {
					m.applyResult(ev.member, e.Vertex, e.Attempt, e.Payload)
				}
				if !ev.msg.More {
					m.signalIdle(ev.member)
				}
			default:
				// A kind this master never expects from a worker is
				// protocol corruption or version skew, not a race; tear
				// the member down so its leases reassign, rather than
				// dropping frames silently.
				m.memberDown(ev.member, fmt.Errorf("cluster: member %d sent unexpected %v frame", ev.member, ev.msg.Kind))
			}
		}
	}
}

func (m *Master[T]) signalIdle(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	m.connMu.Unlock()
	if mc == nil {
		return
	}
	select {
	case mc.idle <- struct{}{}:
	default:
	}
}

// feedHungry answers a worker's hunger announcement (its pool has been
// drained beyond its patience) by stealing queued-but-undispatched
// backlog from the most loaded member: the tail of that member's leases
// — batch entries it has not reached yet — is revoked, cancelled and
// requeued, where the hungry member's blocked sender picks it up. The
// lease/attempt machinery makes the hand-off exact: the victim's later
// results for stolen entries carry retired stamps and are dropped as
// stale, and a death mid-steal requeues only what remains uncovered.
func (m *Master[T]) feedHungry(member int) {
	m.hungers.Add(1)
	if !m.opts.Steal {
		return
	}
	if m.disp.ReadyCount() > 0 {
		// There is queued work already; the hungry member's sender is
		// blocked in Next and will draw it without help.
		return
	}
	if m.leases.load(member) > 0 {
		return // not actually idle: it still owes results
	}
	// Victim: the member with the deepest backlog, at least two leases
	// deep (the head entry is the one it is executing right now).
	victim, deepest := 0, 1
	for w, n := range m.leases.loads() {
		if w != member && n > deepest {
			victim, deepest = w, n
		}
	}
	if victim == 0 {
		return
	}
	backlog := m.leases.memberLeases(victim)
	if len(backlog) < 2 {
		return
	}
	// Steal the newer half of the backlog (tail by grant sequence),
	// leaving the head — and anything involved in a speculative race —
	// with the victim.
	stolen := 0
	for _, l := range backlog[(len(backlog)+1)/2:] {
		if m.rt.LiveAttempts(l.Vertex) != 1 {
			continue
		}
		m.leases.releaseAttempt(l.Vertex, l.Attempt)
		m.ot.RemoveAttempt(l.Vertex, l.Attempt)
		if m.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
			m.disp.Requeue(l.Vertex)
			stolen++
		}
	}
	if stolen > 0 {
		m.ctrs.Steals.Add(int64(stolen))
		m.opts.Trace.Steal(member, stolen)
		m.opts.Trace.Ready(m.disp.ReadyCount())
	}
}

// echoHeartbeat answers a worker beacon, giving the worker's read-idle
// bound the periodic traffic it needs to distinguish a slow master from
// a dead one.
func (m *Master[T]) echoHeartbeat(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	m.connMu.Unlock()
	if mc != nil {
		_ = mc.cn.Send(comm.Message{Kind: comm.KindHeartbeat})
	}
}

// applyResult commits one computed vertex — the per-vertex core of result
// handling, shared by the single-result and batched paths. Accept
// arbitrates concurrent attempts: the first live result (original or
// speculative backup) wins and retires every other attempt, so the
// loser's later delivery falls into the stale branch.
func (m *Master[T]) applyResult(member int, v, attempt int32, payload []byte) {
	if !m.rt.Accept(v, attempt) {
		// A superseded attempt: the vertex was revoked (member declared
		// dead, or overtime) and reassigned, or a concurrent attempt
		// already won the speculative race; drop the late answer.
		m.ctrs.StaleResults.Add(1)
		return
	}
	m.ot.Remove(v)
	if l, ok := m.leases.find(v, attempt); ok {
		m.profile.Observe(m.clock.Now().Sub(l.Granted))
	}
	m.leases.release(v)
	m.specMu.Lock()
	if backup, ok := m.backupOf[v]; ok {
		delete(m.backupOf, v)
		delete(m.specPending, v)
		if backup == attempt {
			m.ctrs.SpecWon.Add(1)
		} else {
			m.ctrs.SpecWasted.Add(1)
		}
	}
	m.specMu.Unlock()
	blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
	if err != nil || len(blocks) != 1 {
		m.finish(fmt.Errorf("cluster: bad result payload for vertex %d from member %d: %v", v, member, err))
		return
	}
	if err := m.commit(v, payload, blocks[0]); err != nil {
		m.finish(err)
		return
	}
	m.reg.NoteCompleted(member)
	m.opts.Trace.TaskEnd(member, v)
	m.ctrs.Tasks.Add(1)
	newly := m.parser.Complete(v)
	m.progress()
	newly = m.absorbCached(newly)
	m.disp.Ready(newly...)
	m.opts.Trace.Ready(m.disp.ReadyCount())
	if m.parser.Finished() {
		m.finish(nil)
	}
}

func (m *Master[T]) progress() {
	if m.opts.OnProgress == nil {
		return
	}
	m.opts.OnProgress(m.graph.N-m.parser.Remaining(), m.graph.N)
}

// memberDown declares a member dead and reassigns its leased vertices.
// It is idempotent: the pump, a failed send and the heartbeat sweep may
// all report the same member.
func (m *Master[T]) memberDown(member int, cause error) {
	if !m.reg.MarkDead(member) {
		return
	}
	_ = cause
	m.noteDeath(member)
	m.revoke(member)
}

// memberLeave handles a graceful departure: same lease revocation, nicer
// bookkeeping.
func (m *Master[T]) memberLeave(member int) {
	if !m.reg.MarkLeft(member) {
		return
	}
	m.revoke(member)
}

// revoke tears down a member's connection and puts its leased vertices
// back on the ready stack for live members. Death-triggered revocations
// deliberately do not count toward MaxAttempts — an elastic cluster must
// survive any number of worker failures as long as capacity remains; the
// MaxAttempts guard stays on the overtime path, where repeated timeouts
// of the same vertex indicate a poisoned task rather than lost hardware.
func (m *Master[T]) revoke(member int) {
	m.connMu.Lock()
	mc := m.conns[member]
	delete(m.conns, member)
	m.connMu.Unlock()
	if mc != nil {
		mc.close()
	}
	leases := m.leases.revokeMember(member)
	reassigned := 0
	for _, l := range leases {
		m.ot.RemoveAttempt(l.Vertex, l.Attempt)
		m.noteAttemptGone(l.Vertex, l.Attempt)
		// Only requeue when no concurrent attempt survives: if the dead
		// member held one side of a speculative race, the other side
		// still covers the vertex.
		if m.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
			m.disp.Requeue(l.Vertex)
			reassigned++
		}
	}
	m.reg.NoteRevoked(len(leases), reassigned)
	if reassigned > 0 {
		m.opts.Trace.Ready(m.disp.ReadyCount())
	}
}

// noteAttemptGone records the speculation-accounting consequence of one
// attempt of v dying (worker death, overtime expiry or a steal): a dead
// backup was wasted; a dead original turns its backup into the sole
// attempt, no longer a race to classify.
func (m *Master[T]) noteAttemptGone(v, attempt int32) {
	m.specMu.Lock()
	if backup, ok := m.backupOf[v]; ok {
		delete(m.backupOf, v)
		if backup == attempt {
			m.ctrs.SpecWasted.Add(1)
		}
	}
	m.specMu.Unlock()
}

// controlLoop is the fault-tolerance thread of the elastic master: it
// applies heartbeat deadlines to the membership table, overtime
// deadlines to in-flight attempts, and — when enabled — flags straggling
// attempts for speculative backups.
func (m *Master[T]) controlLoop() {
	ticker := m.clock.NewTicker(m.opts.CheckInterval)
	defer ticker.Stop()
	// timeouts counts overtime expiries per vertex: the MaxAttempts guard
	// for poisoned tasks. Speculative backups and death revocations bump
	// the attempt stamp without indicting the task, so the register
	// table's attempt count is no longer the right measure.
	timeouts := make(map[int32]int)
	for {
		select {
		case <-m.done:
			return
		case now := <-ticker.C():
			for _, id := range m.reg.Sweep(now, m.opts.HeartbeatInterval, m.opts.HeartbeatMiss) {
				// Sweep already marked it dead; revoke directly (the
				// MarkDead in memberDown would see a dead member and
				// skip).
				m.noteDeath(id)
				m.revoke(id)
			}
			for _, e := range m.ot.ExpireBefore(now) {
				m.leases.releaseAttempt(e.ID, e.Attempt)
				m.noteAttemptGone(e.ID, e.Attempt)
				timeouts[e.ID]++
				if timeouts[e.ID] >= m.opts.MaxAttempts {
					m.finish(fmt.Errorf("cluster: vertex %d timed out %d times (MaxAttempts); giving up", e.ID, timeouts[e.ID]))
					return
				}
				// Requeue only when no concurrent attempt still covers
				// the vertex.
				if m.rt.CancelAttempt(e.ID, e.Attempt) == 0 {
					m.ctrs.Redistributions.Add(1)
					m.disp.Requeue(e.ID)
				}
			}
			if m.opts.Speculate {
				m.maybeSpeculate()
			}
			if m.tuner != nil {
				m.tuneTick()
			}
			if m.onTick != nil {
				m.onTick()
			}
		}
	}
}

// maybeSpeculate flags in-flight attempts whose age exceeds the runtime
// profile's threshold for backup dispatch. Flagged vertices are pushed
// onto the ready stack; an idle sender draws them and register() turns
// the draw into a concurrent backup attempt. Speculation only fires when
// the ready queue is empty — while real work is queued, idle capacity
// should take that first.
func (m *Master[T]) maybeSpeculate() {
	if m.disp.ReadyCount() > 0 {
		return
	}
	q, mult := m.specParams()
	threshold, ok := m.profile.Threshold(q, mult, m.opts.SpecFloor, m.opts.SpecMinSamples)
	if !ok {
		return // cold profile: not enough completions to judge stragglers
	}
	// At most one new backup per live member per tick keeps a burst of
	// stragglers from flooding the queue with speculative work.
	budget := m.reg.Live()
	var flagged []int32
	for _, l := range m.leases.olderThan(threshold) {
		if budget == 0 {
			break
		}
		if m.rt.LiveAttempts(l.Vertex) != 1 {
			continue // already racing a backup
		}
		m.specMu.Lock()
		skip := m.specPending[l.Vertex]
		if !skip {
			m.specPending[l.Vertex] = true
		}
		m.specMu.Unlock()
		if skip {
			continue
		}
		flagged = append(flagged, l.Vertex)
		budget--
	}
	if len(flagged) > 0 {
		m.disp.Ready(flagged...)
	}
}

// batchCap is the dispatch batch bound in effect right now: the
// tuner's recommendation under Auto, the static option otherwise.
func (m *Master[T]) batchCap() int {
	if m.tuner != nil {
		return m.tuner.BatchCap()
	}
	return m.opts.Batch
}

// specParams is the speculation threshold pair in effect right now.
func (m *Master[T]) specParams() (quantile, multiplier float64) {
	if m.tuner != nil {
		return m.tuner.SpecParams()
	}
	return m.opts.SpecQuantile, m.opts.SpecMultiplier
}

// tuneTick feeds one control-tick observation to the tuner and traces
// the recommendation when it moved. Runs on the control loop after the
// tick's sweeps and speculation, so the sample reflects this tick's
// outcomes.
func (m *Master[T]) tuneTick() {
	sample := tune.Sample{
		Dispatches: m.ctrs.Dispatches.Load(),
		TaskBytes:  m.ctrs.TaskBytes.Load(),
		Hungers:    m.hungers.Load(),
		Steals:     m.ctrs.Steals.Load(),
		SpecWon:    m.ctrs.SpecWon.Load(),
		SpecWasted: m.ctrs.SpecWasted.Load(),
	}
	if n := m.profile.Samples(); n > 0 {
		p50, _ := m.profile.Quantile(0.5)
		p95, _ := m.profile.Quantile(0.95)
		sample.ProfileP50, sample.ProfileP95, sample.ProfileSamples = p50, p95, n
	}
	if d := m.tuner.Tick(sample); d.Changed {
		m.opts.Trace.Tune(d.BatchCap, d.Reason)
	}
}
