package cluster

import "sync/atomic"

// Counters is the race-free progress ledger of one job's scheduling: the
// master loop, per-member sender goroutines, and the control loop all bump
// fields concurrently, and monitoring reads them live. Factoring the
// ledger out of Master gives the shared fleet (internal/fleet) one ledger
// per job with the identical meaning per field, so per-job Stats roll up
// into fleet totals without a lock.
type Counters struct {
	Tasks, Dispatches, Redistributions, Restored atomic.Int64
	StaleResults, BatchMessages, TaskBytes       atomic.Int64
	Speculated, SpecWon, SpecWasted, Steals      atomic.Int64
	CacheHits, CacheMisses                       atomic.Int64
	BlocksShipped, BlocksSkipped                 atomic.Int64
}

// Stats materializes the ledger into a plain Stats value. Membership and
// lease fields (Joins, Deaths, Leaked, ...) belong to the registry and
// lease table, so the caller fills them in.
func (c *Counters) Stats() Stats {
	return Stats{
		Tasks:           c.Tasks.Load(),
		Dispatches:      c.Dispatches.Load(),
		Redistributions: c.Redistributions.Load(),
		Restored:        c.Restored.Load(),
		StaleResults:    c.StaleResults.Load(),
		BatchMessages:   c.BatchMessages.Load(),
		TaskBytes:       c.TaskBytes.Load(),
		Speculated:      c.Speculated.Load(),
		SpecWon:         c.SpecWon.Load(),
		SpecWasted:      c.SpecWasted.Load(),
		Steals:          c.Steals.Load(),
		CacheHits:       c.CacheHits.Load(),
		CacheMisses:     c.CacheMisses.Load(),
		BlocksShipped:   c.BlocksShipped.Load(),
		BlocksSkipped:   c.BlocksSkipped.Load(),
	}
}
