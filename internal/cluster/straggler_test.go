package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
)

// One of four workers is pathologically slow. With speculation on, the
// master must dispatch backup attempts for the straggler's vertices and
// finish correctly without a single overtime redistribution — the rescue
// is the speculative race, not the timeout path.
func TestSpeculationRescuesStraggler(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 4)
	opts.Speculate = true
	opts.CheckInterval = 10 * time.Millisecond
	// TaskTimeout (20s from testOptions) stays far above the test runtime,
	// so any rescue observed here is speculation's.

	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 50*time.Microsecond))
	defer h.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 4; i++ {
		if _, err := h.Add(ctx); err != nil {
			t.Fatal(err)
		}
	}
	h.Slow(0, 100*time.Millisecond)

	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "speculation", res.Matrix(), want)
	if res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64", res.Stats.Tasks)
	}
	if res.Stats.Speculated == 0 {
		t.Fatal("no speculative backups dispatched for the straggler")
	}
	if res.Stats.Redistributions != 0 {
		t.Fatalf("redistributions = %d, want 0 (speculation must beat the timeout path)", res.Stats.Redistributions)
	}
	// Every race resolves: no worker died, so each backup is classified as
	// won or wasted by the arbitration.
	if got := res.Stats.SpecWon + res.Stats.SpecWasted; got != res.Stats.Speculated {
		t.Fatalf("won %d + wasted %d != speculated %d", res.Stats.SpecWon, res.Stats.SpecWasted, res.Stats.Speculated)
	}
	if res.Stats.Leaked != 0 {
		t.Fatalf("leaked = %d, want 0", res.Stats.Leaked)
	}
}

// Batched dispatch piles backlog onto a slow member; a drained fast
// member announces hunger and the master must steal the queued tail
// toward it. The victim still computes the stolen entries, so their
// results arrive with retired attempt stamps and are dropped as stale —
// never applied twice.
func TestStealRebalancesBacklog(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 2)
	opts.Steal = true
	opts.Batch = 8

	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	wopts := testWorkerOptions(spec, 50*time.Microsecond)
	wopts.Run.Batch = 8
	wopts.HungerAfter = 20 * time.Millisecond
	h := cluster.NewHarness(prob, m.Addr(), wopts)
	defer h.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := h.Add(ctx); err != nil {
		t.Fatal(err)
	}
	h.Slow(0, 30*time.Millisecond) // slow before the fast member joins so batches pile up here
	if _, err := h.Add(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "steal", res.Matrix(), want)
	if res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64", res.Stats.Tasks)
	}
	if res.Stats.Steals == 0 {
		t.Fatal("no backlog stolen toward the hungry member")
	}
	// The victim computed every stolen vertex anyway; each such result
	// carries a cancelled attempt and must fall into the stale branch.
	if res.Stats.StaleResults < res.Stats.Steals {
		t.Fatalf("stale = %d < steals = %d: a stolen vertex's late result was applied", res.Stats.StaleResults, res.Stats.Steals)
	}
	if res.Stats.Leaked != 0 {
		t.Fatalf("leaked = %d, want 0", res.Stats.Leaked)
	}
}
