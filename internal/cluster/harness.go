package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Harness runs an in-process elastic cluster worker fleet for tests and
// benchmarks, with fault injection. Every worker connects to the master
// through its own TCP proxy, so a test can fail the link (Kill), freeze
// it without closing it (Partition/Heal — the half-open case heartbeats
// exist for), or slow the member's compute (Slow), all without reaching
// into the worker's goroutines.
type Harness[T any] struct {
	p      core.Problem[T]
	master string
	opts   WorkerOptions

	mu      sync.Mutex
	workers []*harnessWorker
	wg      sync.WaitGroup
}

type harnessWorker struct {
	proxy  *proxy
	slow   atomic.Int64 // extra per-task delay, ns
	cancel context.CancelFunc
	done   chan struct{}
	err    error // valid after done is closed
}

// NewHarness prepares a harness whose workers solve p against the master
// at masterAddr. opts is the per-worker template; Addr, Name and
// TaskDelay are overridden per worker.
func NewHarness[T any](p core.Problem[T], masterAddr string, opts WorkerOptions) *Harness[T] {
	return &Harness[T]{p: p, master: masterAddr, opts: opts}
}

// Add starts one worker (joining through a fresh proxy) and returns its
// harness index. Adding while the run is underway is exactly the elastic
// mid-run join.
func (h *Harness[T]) Add(ctx context.Context) (int, error) {
	px, err := newProxy(h.master)
	if err != nil {
		return 0, err
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &harnessWorker{proxy: px, cancel: cancel, done: make(chan struct{})}
	h.mu.Lock()
	idx := len(h.workers)
	h.workers = append(h.workers, w)
	h.mu.Unlock()

	opts := h.opts
	opts.Addr = px.addr()
	opts.Name = fmt.Sprintf("harness-%d", idx)
	opts.TaskDelay = func() time.Duration { return time.Duration(w.slow.Load()) }
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer close(w.done)
		defer cancel()
		w.err = RunWorker(wctx, h.p, opts)
	}()
	return idx, nil
}

func (h *Harness[T]) worker(i int) *harnessWorker {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.workers) {
		return nil
	}
	return h.workers[i]
}

// Kill fails worker i abruptly: its proxy closes every connection with no
// Leave frame, emulating a crashed process. The master notices through
// the connection error (fast path) or the heartbeat deadline.
func (h *Harness[T]) Kill(i int) {
	if w := h.worker(i); w != nil {
		w.proxy.close()
	}
}

// Leave cancels worker i's context: it sends a Leave frame and departs
// gracefully.
func (h *Harness[T]) Leave(i int) {
	if w := h.worker(i); w != nil {
		w.cancel()
	}
}

// Partition freezes worker i's link in both directions without closing
// it: TCP stays established, bytes stop flowing — the silent half-open
// failure mode. Heal resumes the flow (no bytes are lost while frozen).
func (h *Harness[T]) Partition(i int) {
	if w := h.worker(i); w != nil {
		w.proxy.pause(true)
	}
}

// Heal unfreezes a partitioned worker's link.
func (h *Harness[T]) Heal(i int) {
	if w := h.worker(i); w != nil {
		w.proxy.pause(false)
	}
}

// Slow adds d of artificial delay before each of worker i's tasks
// (0 restores full speed).
func (h *Harness[T]) Slow(i int, d time.Duration) {
	if w := h.worker(i); w != nil {
		w.slow.Store(int64(d))
	}
}

// Err blocks until worker i exits and returns its RunWorker error.
func (h *Harness[T]) Err(i int) error {
	w := h.worker(i)
	if w == nil {
		return fmt.Errorf("cluster: harness has no worker %d", i)
	}
	<-w.done
	return w.err
}

// Wait blocks until every worker has exited.
func (h *Harness[T]) Wait() {
	h.wg.Wait()
}

// Close kills every worker and waits for them.
func (h *Harness[T]) Close() {
	h.mu.Lock()
	workers := append([]*harnessWorker(nil), h.workers...)
	h.mu.Unlock()
	for _, w := range workers {
		w.cancel()
		w.proxy.close()
	}
	h.wg.Wait()
}

// proxy is a byte-level TCP forwarder with a freeze gate.
type proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	cond   *sync.Cond
	paused bool
	closed bool
	conns  []net.Conn
}

func newProxy(target string) (*proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &proxy{ln: ln, target: target}
	p.cond = sync.NewCond(&p.mu)
	go p.acceptLoop()
	return p, nil
}

func (p *proxy) addr() string { return p.ln.Addr().String() }

func (p *proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			continue
		}
		p.conns = append(p.conns, c, up)
		p.mu.Unlock()
		go p.pipe(c, up)
		go p.pipe(up, c)
	}
}

// pipe copies src to dst, holding each chunk at the freeze gate.
func (p *proxy) pipe(src, dst net.Conn) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.gate()
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// gate blocks while the proxy is paused.
func (p *proxy) gate() {
	p.mu.Lock()
	for p.paused && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

func (p *proxy) pause(v bool) {
	p.mu.Lock()
	p.paused = v
	p.cond.Broadcast()
	p.mu.Unlock()
}

// close tears the proxy down abruptly: listener and every live connection
// close with no goodbye, releasing any pipe stuck at the gate.
func (p *proxy) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
