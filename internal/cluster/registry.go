package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// MemberState is the lifecycle state of a cluster member. Transitions:
//
//	admit → Active
//	Active → Suspect      one heartbeat interval of silence
//	Suspect → Active      a heartbeat arrives
//	Active|Suspect → Dead HeartbeatMiss silent intervals, or conn failure
//	Active|Suspect → Left graceful leave message
//
// Dead and Left are terminal: a worker that comes back joins as a new
// member with a new incarnation, so results signed with its old identity
// stay refusable.
type MemberState uint8

const (
	// StateActive members heartbeat on schedule and hold leases.
	StateActive MemberState = iota + 1
	// StateSuspect members missed at least one heartbeat interval but
	// fewer than HeartbeatMiss; they keep their leases.
	StateSuspect
	// StateDead members missed HeartbeatMiss intervals or lost their
	// connection; their leases are revoked.
	StateDead
	// StateLeft members departed gracefully; their leases are revoked.
	StateLeft
)

func (s MemberState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Member is one admitted worker. The ID doubles as the incarnation: it
// is never reused within a master's lifetime, so a lease names exactly
// one admission of one worker process.
type Member struct {
	ID        int
	Name      string
	Addr      string
	State     MemberState
	Joined    time.Time
	LastBeat  time.Time
	Completed int64 // vertices this member computed
}

// Registry is the master's membership table.
type Registry struct {
	mu      sync.Mutex
	next    int
	members map[int]*Member
	tr      *trace.Recorder
	clock   sched.Clock

	joins, leaves, deaths     int64
	leasesRevoked, reassigned int64
}

// NewRegistry creates an empty registry; membership transitions are
// mirrored into tr (nil records nothing) and heartbeat stamps read from
// clock (nil means the wall clock), so the deadline tests can drive the
// table deterministically.
func NewRegistry(tr *trace.Recorder, clock sched.Clock) *Registry {
	if clock == nil {
		clock = sched.Wall
	}
	return &Registry{members: make(map[int]*Member), tr: tr, clock: clock}
}

// Admit registers a new member and returns its identity.
func (r *Registry) Admit(name, addr string) Member {
	r.mu.Lock()
	r.next++
	now := r.clock.Now()
	if name == "" {
		name = fmt.Sprintf("worker-%d", r.next)
	}
	m := &Member{ID: r.next, Name: name, Addr: addr, State: StateActive, Joined: now, LastBeat: now}
	r.members[m.ID] = m
	r.joins++
	cp := *m
	r.mu.Unlock()
	r.tr.Member(cp.ID, "active")
	return cp
}

// Beat records a heartbeat (or any traffic) from member id; a suspect
// member recovers to active.
func (r *Registry) Beat(id int) {
	r.mu.Lock()
	m := r.members[id]
	recovered := false
	if m != nil && (m.State == StateActive || m.State == StateSuspect) {
		m.LastBeat = r.clock.Now()
		recovered = m.State == StateSuspect
		m.State = StateActive
	}
	r.mu.Unlock()
	if recovered {
		r.tr.Member(id, "active")
	}
}

// Sweep applies the heartbeat deadlines at time now: members silent for
// more than one interval become suspect; members silent for more than
// miss intervals are declared dead. It returns the ids that died in this
// sweep (the caller revokes their leases).
func (r *Registry) Sweep(now time.Time, interval time.Duration, miss int) []int {
	var died, suspected []int
	r.mu.Lock()
	for id, m := range r.members {
		if m.State != StateActive && m.State != StateSuspect {
			continue
		}
		silent := now.Sub(m.LastBeat)
		switch {
		case silent > time.Duration(miss)*interval:
			m.State = StateDead
			r.deaths++
			died = append(died, id)
		case silent > interval && m.State == StateActive:
			m.State = StateSuspect
			suspected = append(suspected, id)
		}
	}
	r.mu.Unlock()
	// The scan above walks the member map, so the transition lists come
	// out in map order; sort them so the trace stream and the caller's
	// revocation order are deterministic functions of membership history
	// (the simulator's byte-identical-trace contract depends on it).
	sort.Ints(suspected)
	sort.Ints(died)
	for _, id := range suspected {
		r.tr.Member(id, "suspect")
	}
	for _, id := range died {
		r.tr.Member(id, "dead")
	}
	return died
}

// MarkDead forces member id dead (connection failure detected before any
// heartbeat deadline). It reports whether the member was alive.
func (r *Registry) MarkDead(id int) bool {
	r.mu.Lock()
	m := r.members[id]
	alive := m != nil && (m.State == StateActive || m.State == StateSuspect)
	if alive {
		m.State = StateDead
		r.deaths++
	}
	r.mu.Unlock()
	if alive {
		r.tr.Member(id, "dead")
	}
	return alive
}

// MarkLeft records a graceful departure. It reports whether the member
// was alive.
func (r *Registry) MarkLeft(id int) bool {
	r.mu.Lock()
	m := r.members[id]
	alive := m != nil && (m.State == StateActive || m.State == StateSuspect)
	if alive {
		m.State = StateLeft
		r.leaves++
	}
	r.mu.Unlock()
	if alive {
		r.tr.Member(id, "left")
	}
	return alive
}

// NoteCompleted credits one completed vertex to member id.
func (r *Registry) NoteCompleted(id int) {
	r.mu.Lock()
	if m := r.members[id]; m != nil {
		m.Completed++
	}
	r.mu.Unlock()
}

// NoteRevoked accumulates lease-revocation accounting, driven by the
// revocation path of whoever owns the registry — the elastic master or
// the shared fleet.
func (r *Registry) NoteRevoked(leases, reassigned int) {
	r.mu.Lock()
	r.leasesRevoked += int64(leases)
	r.reassigned += int64(reassigned)
	r.mu.Unlock()
}

// Live returns how many members can currently take work.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.members {
		if m.State == StateActive || m.State == StateSuspect {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of every member ever admitted, sorted by id.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, *m)
	}
	r.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Metrics returns the monitoring snapshot for /metrics exposition.
func (r *Registry) Metrics() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		States:        make(map[string]int),
		Joins:         r.joins,
		Leaves:        r.leaves,
		Deaths:        r.deaths,
		LeasesRevoked: r.leasesRevoked,
	}
	for _, m := range r.members {
		s.States[m.State.String()]++
	}
	return s
}

// MembershipCounts returns the cumulative membership tallies for Stats.
func (r *Registry) MembershipCounts() (joins, leaves, deaths, revoked, reassigned int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.joins, r.leaves, r.deaths, r.leasesRevoked, r.reassigned
}
