// Package cluster is the elastic control plane for the process level of
// the EasyHPS runtime. Where the fixed master–slave deployment
// (comm.ListenMaster + core.RunMaster) needs exactly -workers ranks with
// hand-matched flags and can only paper over a dead worker with timeout
// resends, this package runs the master as a long-lived membership
// service:
//
//   - workers join at any time over the TCP transport with a handshake
//     carrying the protocol version and a problem-spec digest, and are
//     admitted as members with monotonically increasing incarnations;
//   - liveness is tracked by heartbeats (worker → master, echoed back);
//     a member that misses HeartbeatMiss intervals, or whose connection
//     fails, is declared dead;
//   - every dispatched DAG vertex holds a lease bound to the member's
//     incarnation; when the member dies or leaves, its leases are
//     revoked and the vertices reassigned to live workers, sharing the
//     register-table/overtime machinery of internal/sched with the
//     timeout path;
//   - completed vertices stream to an internal/checkpoint file, so a
//     restarted master resumes from the clean prefix and rejoining
//     workers never recompute finished work.
//
// See docs/CLUSTER.md for the membership state machine and the lease
// lifecycle.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/cas"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Spec identifies the problem a cluster is solving. Master and workers
// each build their Problem locally from flags; the digest of this struct
// travels in the join handshake so a worker built from different flags is
// refused at admission instead of corrupting the run.
type Spec struct {
	// App names the application (the internal/cli registry).
	App string
	// N is the matrix side length.
	N int
	// Seed is the workload seed.
	Seed int64
	// Proc is process_partition_size; zero means the runtime default,
	// which both sides derive identically from N.
	Proc dag.Size
	// Thread is thread_partition_size (worker-local, but part of the
	// spec so a run is fully described by it).
	Thread dag.Size
}

// Digest fingerprints the spec for the join handshake.
func (s Spec) Digest() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("easyhps-spec:1:%s:%d:%d:%dx%d:%dx%d",
		s.App, s.N, s.Seed, s.Proc.Rows, s.Proc.Cols, s.Thread.Rows, s.Thread.Cols)))
	return hex.EncodeToString(h[:12])
}

// Options configures an elastic master.
type Options struct {
	// Addr is the listen address (host:port; :0 picks a free port,
	// readable from Master.Addr).
	Addr string
	// Spec is the problem identity enforced at admission. The zero Spec
	// disables the digest check.
	Spec Spec
	// MinWorkers blocks scheduling until this many members are admitted
	// (default 1). Scheduling starts as soon as the quorum exists;
	// further workers are admitted mid-run.
	MinWorkers int
	// HeartbeatInterval is the worker beacon period (default 250 ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many silent intervals declare a member dead
	// (default 3). One silent interval marks it suspect.
	HeartbeatMiss int
	// TaskTimeout is the per-vertex overtime bound; a leased vertex not
	// finished within it is redistributed even if its member still
	// heartbeats (default 30 s).
	TaskTimeout time.Duration
	// CheckInterval is the control-loop tick (default HeartbeatInterval).
	CheckInterval time.Duration
	// MaxAttempts bounds overtime redistributions per vertex before the
	// run aborts (default 4). Revocations caused by member death do not
	// count — an elastic cluster must survive any number of worker
	// failures as long as capacity remains.
	MaxAttempts int
	// Batch bounds how many ready vertices one dispatch message may
	// carry to a member (default 1, the classic per-vertex protocol).
	// Every vertex of a batch holds its own lease, so a member death
	// mid-batch revokes and reassigns exactly the undone remainder.
	// Batch is a scheduling knob, deliberately outside Spec: masters and
	// workers with different Batch settings interoperate (the worker
	// executes whatever batch arrives and flushes at its own bound).
	Batch int
	// RunTimeout aborts the run when exceeded (0 disables).
	RunTimeout time.Duration
	// JoinWindow bounds how long Run waits for the MinWorkers quorum
	// (default 1 minute).
	JoinWindow time.Duration
	// Speculate enables speculative re-execution: when an in-flight
	// vertex runs longer than a high quantile of the kernel's observed
	// runtimes (see SpecQuantile/SpecMultiplier), a backup attempt is
	// dispatched to an idle member and whichever result arrives first
	// wins; the loser is dropped by attempt stamp.
	Speculate bool
	// SpecQuantile is the runtime-profile quantile an attempt must
	// outlive to become a speculation candidate (default 0.95).
	SpecQuantile float64
	// SpecMultiplier scales the quantile into the age threshold
	// (default 2: "twice the p95 runtime").
	SpecMultiplier float64
	// SpecMinSamples is how many completed vertices must be observed
	// before speculation arms (default 8) — backing up half the first
	// wave off a cold profile would only add load.
	SpecMinSamples int
	// SpecFloor is the minimum age threshold (default CheckInterval),
	// keeping sub-tick kernels from speculating on scheduling jitter.
	SpecFloor time.Duration
	// Steal enables idle work stealing: a worker that announces hunger
	// (its pool drained for a while) is fed queued-but-undispatched
	// batch entries revoked from the most loaded member's backlog.
	Steal bool
	// Auto hands the straggler knobs to the online tuner: Speculate and
	// Steal are forced on, Batch/SpecQuantile/SpecMultiplier become the
	// tuner's starting point, and every control-loop tick may adjust
	// them from observed dispatch progress, hunger, profile dispersion
	// and speculation outcomes (internal/tune). Adjustments are traced
	// as EvTune events and exported via TuneSnapshot.
	Auto bool
	// Clock is the time source for the deadline machinery — heartbeat
	// stamps and sweeps, lease grants, overtime deadlines, speculation
	// ages and the control-loop tick. Nil means the wall clock; tests
	// inject a sched.FakeClock and advance it instead of sleeping.
	Clock sched.Clock
	// CheckpointPath, when non-empty, persists completed vertices to
	// this file and resumes from its clean prefix on start.
	CheckpointPath string
	// Cache, when non-nil, is the cross-job content-addressed result
	// store (internal/cas): completed blocks are written through to it,
	// and newly computable vertices are probed against it and committed
	// without dispatch on a hit.
	Cache *cas.Store
	// CacheKey is the problem-spec content digest the cache keys chain
	// from. Empty defaults to Spec.Digest() when Spec is non-zero; with
	// a zero Spec an empty CacheKey leaves caching off even when Cache
	// is set, since keys could collide across unrelated problems.
	CacheKey string
	// Trace optionally records scheduling and membership events.
	Trace *trace.Recorder
	// OnProgress, when non-nil, is called after restore and after every
	// completed vertex with (completed, total). It runs on the master's
	// receive loop, so it must be fast and must not block.
	OnProgress func(completed, total int)
	// OnDeath, when non-nil, is called with the member id whenever the
	// master declares a member dead — connection failure, failed
	// handshake, or the heartbeat sweep. It runs on the master's
	// internal loops, so it must be fast, must not block, and must not
	// call back into the master.
	OnDeath func(member int)
}

// withDefaults fills the defaulted fields.
func (o Options) withDefaults() Options {
	if o.Auto {
		// Auto means "mitigate stragglers for me": both mitigation
		// mechanisms arm, and the tuner owns their thresholds.
		o.Speculate = true
		o.Steal = true
	}
	if o.MinWorkers < 1 {
		o.MinWorkers = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMiss < 1 {
		o.HeartbeatMiss = 3
	}
	if o.TaskTimeout <= 0 {
		o.TaskTimeout = 30 * time.Second
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = o.HeartbeatInterval
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 4
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.JoinWindow <= 0 {
		o.JoinWindow = time.Minute
	}
	if o.SpecQuantile <= 0 || o.SpecQuantile > 1 {
		o.SpecQuantile = 0.95
	}
	if o.SpecMultiplier <= 1 {
		o.SpecMultiplier = 2
	}
	if o.SpecMinSamples < 1 {
		o.SpecMinSamples = 8
	}
	if o.SpecFloor <= 0 {
		o.SpecFloor = o.CheckInterval
	}
	if o.Clock == nil {
		o.Clock = sched.Wall
	}
	if o.Cache != nil && o.CacheKey == "" && o.Spec != (Spec{}) {
		o.CacheKey = o.Spec.Digest()
	}
	return o
}

// Stats aggregates what happened during an elastic run.
type Stats struct {
	// Tasks is the number of vertices completed by workers this run
	// (restored vertices excluded).
	Tasks int64
	// Dispatches counts task sends (>= Tasks under redistribution).
	Dispatches int64
	// Redistributions counts overtime-triggered reassignments.
	Redistributions int64
	// Restored counts vertices recovered from the checkpoint.
	Restored int64
	// StaleResults counts dropped results of superseded attempts
	// (late answers from slow, partitioned or dead-declared members).
	StaleResults int64
	// Joins, Leaves and Deaths count membership transitions.
	Joins, Leaves, Deaths int64
	// LeasesRevoked counts leases revoked by death or leave; Reassigned
	// counts the vertices put back on the ready stack because of it.
	LeasesRevoked, Reassigned int64
	// BatchMessages counts multi-vertex task messages sent (zero when
	// Options.Batch <= 1); TaskBytes is the total task payload volume.
	BatchMessages, TaskBytes int64
	// Speculated counts backup attempts dispatched; SpecWon of those,
	// how many beat the original; SpecWasted, how many were beaten,
	// cancelled or revoked (the overhead side of the bet).
	Speculated, SpecWon, SpecWasted int64
	// Steals counts queued-but-undispatched vertices revoked from a
	// loaded member's backlog and requeued toward a hungry one.
	Steals int64
	// CacheHits counts vertices served from the cross-job result cache
	// instead of dispatched; CacheMisses counts probes that fell through
	// to computation (internal/cas).
	CacheHits, CacheMisses int64
	// BlocksShipped counts data-region blocks sent to workers under the
	// keyed wire format; BlocksSkipped counts blocks replaced by a
	// content-key reference because the worker already held them.
	BlocksShipped, BlocksSkipped int64
	// Leaked is the number of register-table plus lease entries still
	// live when the run finished; always zero for a clean run (asserted
	// by the fault soak).
	Leaked int64
	// Elapsed is the wall-clock makespan of Run.
	Elapsed time.Duration
}

// Add accumulates o into s field by field (Elapsed takes the max, since
// concurrent jobs overlap in wall time) — the fleet's roll-up of per-job
// Stats into one aggregate view.
func (s *Stats) Add(o Stats) {
	s.Tasks += o.Tasks
	s.Dispatches += o.Dispatches
	s.Redistributions += o.Redistributions
	s.Restored += o.Restored
	s.StaleResults += o.StaleResults
	s.Joins += o.Joins
	s.Leaves += o.Leaves
	s.Deaths += o.Deaths
	s.LeasesRevoked += o.LeasesRevoked
	s.Reassigned += o.Reassigned
	s.BatchMessages += o.BatchMessages
	s.TaskBytes += o.TaskBytes
	s.Speculated += o.Speculated
	s.SpecWon += o.SpecWon
	s.SpecWasted += o.SpecWasted
	s.Steals += o.Steals
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.BlocksShipped += o.BlocksShipped
	s.BlocksSkipped += o.BlocksSkipped
	s.Leaked += o.Leaked
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d dispatches=%d redist=%d restored=%d stale=%d joins=%d leaves=%d deaths=%d revoked=%d reassigned=%d spec=%d/%d/%d steals=%d elapsed=%v",
		s.Tasks, s.Dispatches, s.Redistributions, s.Restored, s.StaleResults,
		s.Joins, s.Leaves, s.Deaths, s.LeasesRevoked, s.Reassigned,
		s.Speculated, s.SpecWon, s.SpecWasted, s.Steals, s.Elapsed)
}

// Result of an elastic run: the completed blocked matrix plus statistics.
type Result[T any] struct {
	Store matrix.BlockStore[T]
	Stats Stats
}

// Matrix assembles the result into a dense matrix.
func (r *Result[T]) Matrix() [][]T { return r.Store.Assemble() }

// Snapshot is the monitoring view of a cluster, exposed through the job
// service's /metrics endpoint (see server.Manager.SetClusterStats).
type Snapshot struct {
	// States counts current members by state name.
	States map[string]int
	// Joins, Leaves, Deaths, LeasesRevoked mirror Stats, cumulatively.
	Joins, Leaves, Deaths, LeasesRevoked int64
	// Speculated, SpecWon, SpecWasted and Steals mirror the straggler-
	// mitigation counters of Stats, cumulatively (zero when read from a
	// bare Registry — populate them via Master.Snapshot).
	Speculated, SpecWon, SpecWasted, Steals int64
}
