package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// reference builds the DP instance for app with the same generator
// recipe cli.Build uses, exposing the sequential matrix the CLI facade
// does not. The default branch fails loudly so a new entry in cli.Apps
// forces a matching reference here.
func reference(t *testing.T, app string, n int) (core.Problem[int32], [][]int32) {
	t.Helper()
	const seed = 7
	switch app {
	case "swgg":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, seed+1)
		s := dp.NewSWGG(a, b)
		return s.Problem(), s.Sequential()
	case "nussinov":
		nu := dp.NewNussinov(dp.RandomRNA(n, seed))
		return nu.Problem(), nu.Sequential()
	case "editdist":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, seed+1)
		e := dp.NewEditDistance(a, b)
		return e.Problem(), e.Sequential()
	case "lcs":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, seed+1)
		l := dp.NewLCS(a, b)
		return l.Problem(), l.Sequential()
	case "nw":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, seed+1)
		nw := dp.NewNeedlemanWunsch(a, b)
		return nw.Problem(), nw.Sequential()
	case "knapsack":
		k := dp.NewKnapsack(n, 4*n, seed)
		return k.Problem(), k.Sequential()
	}
	t.Fatalf("no sequential reference for app %q — extend reference() alongside cli.Apps", app)
	return core.Problem[int32]{}, nil
}

func checkMatrix(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: [%d][%d] = %d, want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// waitTick receives one control-loop tick completion (the onTick hook
// fires after the tick's sweep/overtime/speculation work is done), so the
// caller can assert the tick's effects without polling. The real-time
// timeout only bounds a wedged loop.
func waitTick(t *testing.T, ticks <-chan struct{}) {
	t.Helper()
	select {
	case <-ticks:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a control-loop tick")
	}
}

func fakeClockProblem() core.Problem[int32] {
	e := dp.NewEditDistance(dp.RandomDNA(64, 51), dp.RandomDNA(64, 52))
	return e.Problem()
}

// TestDuplicateResultIdempotent drives the master's result path directly,
// for every registered application: each vertex gets an original and a
// speculative backup attempt, both results are delivered, each twice, in
// both orders. Exactly one delivery per vertex may take effect; the rest
// must drop as stale, and the assembled matrix must stay bit-identical to
// the sequential reference — including after a checkpoint replay.
func TestDuplicateResultIdempotent(t *testing.T) {
	for _, app := range cli.Apps {
		t.Run(app, func(t *testing.T) {
			prob, want := reference(t, app, 48)
			proc := dag.Size{Rows: (prob.Size.Rows + 7) / 8, Cols: (prob.Size.Cols + 7) / 8}
			opts := Options{
				Addr:           "127.0.0.1:0",
				MinWorkers:     1,
				TaskTimeout:    time.Hour,
				CheckpointPath: t.TempDir() + "/run.ckpt",
			}
			m, err := NewMaster(prob, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer m.teardown()
			if err := m.restore(); err != nil {
				t.Fatal(err)
			}
			runner, err := core.NewTaskRunner(prob, core.Config{ProcPartition: proc, Threads: 2})
			if err != nil {
				t.Fatal(err)
			}

			applied := 0
			var wantWon, wantWasted int64
			for {
				v, ok := m.disp.Next(1)
				if !ok {
					break // dispatcher closed: the DAG drained
				}
				orig, ok, backup := m.register(1, v)
				if !ok || backup {
					t.Fatalf("vertex %d: original register = (%v, backup=%v)", v, ok, backup)
				}
				m.leases.grant(v, 1, orig)
				m.specMu.Lock()
				m.specPending[v] = true
				m.specMu.Unlock()
				spec, ok, backup := m.register(2, v)
				if !ok || !backup {
					t.Fatalf("vertex %d: backup register = (%v, backup=%v)", v, ok, backup)
				}
				m.leases.add(v, 2, spec)

				deps := m.graph.Vertex(v).DataPre
				positions := make([]dag.Pos, len(deps))
				for k, d := range deps {
					positions[k] = m.geom.PosOf(d)
				}
				payload, err := matrix.EncodeBlocks(prob.Codec, m.store.Gather(positions))
				if err != nil {
					t.Fatal(err)
				}
				out, err := runner.Run(v, payload)
				if err != nil {
					t.Fatal(err)
				}

				if applied%2 == 0 {
					// Original first: the backup was wasted work.
					m.applyResult(1, v, orig, out)
					m.applyResult(1, v, orig, out)
					m.applyResult(2, v, spec, out)
					m.applyResult(2, v, spec, out)
					wantWasted++
				} else {
					// Backup first: the speculation won the race.
					m.applyResult(2, v, spec, out)
					m.applyResult(2, v, spec, out)
					m.applyResult(1, v, orig, out)
					m.applyResult(1, v, orig, out)
					wantWon++
				}
				applied++
			}

			if !m.parser.Finished() {
				t.Fatal("DAG did not drain")
			}
			if got := m.ctrs.Tasks.Load(); got != int64(applied) {
				t.Fatalf("tasks = %d, want %d (each vertex counted exactly once)", got, applied)
			}
			if got := m.ctrs.StaleResults.Load(); got != int64(3*applied) {
				t.Fatalf("stale = %d, want %d (three dropped deliveries per vertex)", got, 3*applied)
			}
			if got := m.ctrs.SpecWon.Load(); got != wantWon {
				t.Fatalf("specWon = %d, want %d", got, wantWon)
			}
			if got := m.ctrs.SpecWasted.Load(); got != wantWasted {
				t.Fatalf("specWasted = %d, want %d", got, wantWasted)
			}
			if n := m.rt.Outstanding(); n != 0 {
				t.Fatalf("%d attempts leaked in the register table", n)
			}
			if n := m.leases.len(); n != 0 {
				t.Fatalf("%d leases leaked", n)
			}
			checkMatrix(t, app, m.store.Assemble(), want)

			// A fresh master must replay the checkpoint to the same matrix:
			// the duplicate deliveries wrote each vertex exactly once.
			m.teardown()
			m2, err := NewMaster(prob, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.teardown()
			if err := m2.restore(); err != nil {
				t.Fatal(err)
			}
			if got := m2.ctrs.Restored.Load(); got != int64(applied) {
				t.Fatalf("restored = %d, want %d", got, applied)
			}
			if !m2.parser.Finished() {
				t.Fatal("restored master did not recognise the finished run")
			}
			checkMatrix(t, app+" (restored)", m2.store.Assemble(), want)
		})
	}
}

// TestClusterOvertimeFakeClock drives the control loop's overtime path on
// a FakeClock: expiry must release the lease and requeue the vertex, and
// MaxAttempts expiries of the same vertex must abort the run — all
// without a single real-time timeout.
func TestClusterOvertimeFakeClock(t *testing.T) {
	fake := sched.NewFakeClock(time.Unix(0, 0))
	opts := Options{
		Addr:              "127.0.0.1:0",
		MinWorkers:        1,
		HeartbeatInterval: time.Hour, // keep the membership sweep inert
		CheckInterval:     time.Second,
		TaskTimeout:       500 * time.Millisecond,
		MaxAttempts:       3,
		Clock:             fake,
	}
	m, err := NewMaster(fakeClockProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.teardown()
	if err := m.restore(); err != nil {
		t.Fatal(err)
	}
	ticks := make(chan struct{}, 8)
	m.onTick = func() { ticks <- struct{}{} }
	loopDone := make(chan struct{})
	go func() {
		m.controlLoop()
		close(loopDone)
	}()
	fake.BlockUntilTickers(1)

	var vertex int32 = -1
	for round := 1; round <= opts.MaxAttempts; round++ {
		v, ok := m.disp.Next(1)
		if !ok {
			t.Fatalf("round %d: dispatcher closed", round)
		}
		if vertex == -1 {
			vertex = v
		} else if v != vertex {
			t.Fatalf("round %d: drew vertex %d, want requeued %d", round, v, vertex)
		}
		attempt, ok, backup := m.register(1, v)
		if !ok || backup {
			t.Fatalf("round %d: register = (%v, backup=%v)", round, ok, backup)
		}
		m.leases.grant(v, 1, attempt)
		m.ot.Add(v, attempt, fake.Now().Add(opts.TaskTimeout))

		fake.Advance(opts.CheckInterval)
		if round < opts.MaxAttempts {
			waitTick(t, ticks)
			if got := m.ctrs.Redistributions.Load(); got != int64(round) {
				t.Fatalf("round %d: redistributions = %d, want %d", round, got, round)
			}
			if n := m.leases.len(); n != 0 {
				t.Fatalf("round %d: %d leases survived the timeout", round, n)
			}
			if m.rt.Accept(v, attempt) {
				t.Fatalf("round %d: expired attempt still accepted", round)
			}
		}
	}

	// The final expiry aborts the run from inside the tick, before the
	// onTick hook fires — wait on the run's own done channel instead.
	select {
	case <-m.done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for MaxAttempts abort")
	}
	<-loopDone
	m.errMu.Lock()
	err = m.err
	m.errMu.Unlock()
	if err == nil || !strings.Contains(err.Error(), "MaxAttempts") {
		t.Fatalf("run error = %v, want MaxAttempts abort", err)
	}
	if got := m.ctrs.Redistributions.Load(); got != int64(opts.MaxAttempts-1) {
		t.Fatalf("redistributions = %d, want %d", got, opts.MaxAttempts-1)
	}
}

// TestSpeculationFakeClock verifies the straggler detector on a FakeClock:
// no backup below the profile threshold, exactly one flag past it, no
// re-flag while one is pending, and the flagged draw becomes a concurrent
// backup attempt — refused only to the member already holding the vertex.
func TestSpeculationFakeClock(t *testing.T) {
	fake := sched.NewFakeClock(time.Unix(0, 0))
	opts := Options{
		Addr:              "127.0.0.1:0",
		MinWorkers:        1,
		HeartbeatInterval: time.Hour,
		CheckInterval:     time.Second,
		TaskTimeout:       time.Hour, // overtime must not race the detector
		Speculate:         true,
		Clock:             fake,
	}
	m, err := NewMaster(fakeClockProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.teardown()
	if err := m.restore(); err != nil {
		t.Fatal(err)
	}

	w1 := m.reg.Admit("w1", "test") // the speculation budget is per live member

	// Cold profile: no threshold, no speculation.
	m.maybeSpeculate()

	v, ok := m.disp.Next(w1.ID)
	if !ok {
		t.Fatal("dispatcher closed")
	}
	orig, ok, backup := m.register(w1.ID, v)
	if !ok || backup {
		t.Fatalf("register = (%v, backup=%v)", ok, backup)
	}
	m.leases.grant(v, w1.ID, orig)
	m.ot.Add(v, orig, fake.Now().Add(opts.TaskTimeout))

	// Warm the profile: p95 = 2s, threshold = 2 * 2s = 4s (defaults).
	for i := 0; i < 8; i++ {
		m.profile.Observe(2 * time.Second)
	}

	fake.Advance(3 * time.Second)
	m.maybeSpeculate()
	if n := m.disp.ReadyCount(); n != 0 {
		t.Fatalf("speculated on a 3s-old attempt below the 4s threshold (%d flagged)", n)
	}

	fake.Advance(2 * time.Second) // age 5s > threshold
	m.maybeSpeculate()
	if n := m.disp.ReadyCount(); n != 1 {
		t.Fatalf("flagged %d vertices past the threshold, want 1", n)
	}
	m.maybeSpeculate()
	if n := m.disp.ReadyCount(); n != 1 {
		t.Fatalf("detector re-flagged while a backup was queued (%d ready)", n)
	}

	// The holder of the original must not back itself up: its own draw of
	// the flagged vertex is refused and the flag dropped.
	if vd, ok := m.disp.Next(w1.ID); !ok || vd != v {
		t.Fatalf("flagged draw = (%d, %v), want vertex %d", vd, ok, v)
	}
	if _, ok, _ := m.register(w1.ID, v); ok {
		t.Fatal("member granted a backup of its own attempt")
	}
	if m.rt.LiveAttempts(v) != 1 {
		t.Fatalf("LiveAttempts = %d after refused self-backup, want 1", m.rt.LiveAttempts(v))
	}

	// Re-flag; a second member turns the draw into a concurrent backup.
	fake.Advance(time.Second)
	m.maybeSpeculate()
	if n := m.disp.ReadyCount(); n != 1 {
		t.Fatalf("dropped flag not re-raised on the next tick (%d ready)", n)
	}
	w2 := m.reg.Admit("w2", "test")
	v2, ok := m.disp.Next(w2.ID)
	if !ok || v2 != v {
		t.Fatalf("backup draw = (%d, %v), want vertex %d", v2, ok, v)
	}
	spec, ok, backup := m.register(w2.ID, v2)
	if !ok || !backup {
		t.Fatalf("backup register = (%v, backup=%v)", ok, backup)
	}
	m.leases.add(v, w2.ID, spec)
	if m.rt.LiveAttempts(v) != 2 {
		t.Fatalf("LiveAttempts = %d, want 2 (original + backup)", m.rt.LiveAttempts(v))
	}

	// While a race is live the detector must leave the vertex alone.
	fake.Advance(10 * time.Second)
	m.maybeSpeculate()
	if n := m.disp.ReadyCount(); n != 0 {
		t.Fatalf("detector flagged a vertex already racing a backup (%d ready)", n)
	}
}
