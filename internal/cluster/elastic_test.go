package cluster_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/trace"
)

// testProblem is an edit-distance instance partitioned into an 8x8 grid
// of processor-level vertices: large enough that faults land mid-run,
// small enough for the race detector.
func testProblem(t testing.TB) (core.Problem[int32], [][]int32, cluster.Spec) {
	t.Helper()
	e := dp.NewEditDistance(dp.RandomDNA(64, 51), dp.RandomDNA(64, 52))
	spec := cluster.Spec{App: "editdist", N: 64, Seed: 51, Proc: dag.Square(8), Thread: dag.Square(4)}
	return e.Problem(), e.Sequential(), spec
}

func testOptions(spec cluster.Spec, minWorkers int) cluster.Options {
	return cluster.Options{
		Addr:              "127.0.0.1:0",
		Spec:              spec,
		MinWorkers:        minWorkers,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMiss:     3,
		TaskTimeout:       20 * time.Second,
		RunTimeout:        2 * time.Minute,
		JoinWindow:        30 * time.Second,
	}
}

func testWorkerOptions(spec cluster.Spec, workPerCell time.Duration) cluster.WorkerOptions {
	return cluster.WorkerOptions{
		Spec:              spec,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMiss:     3,
		DialTimeout:       10 * time.Second,
		Run: core.Config{
			Threads:          2,
			WorkDelayPerCell: workPerCell,
		},
	}
}

func equalMatrices(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d cols, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: [%d][%d] = %d, want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// progressTrigger returns an OnProgress hook that closes ch (once) when
// completion reaches threshold, so a test goroutine with proper
// happens-before edges can react off the master's receive loop.
func progressTrigger(threshold int, ch chan<- struct{}) func(done, total int) {
	var once sync.Once
	return func(done, total int) {
		if done >= threshold {
			once.Do(func() { close(ch) })
		}
	}
}

// Killing one of four workers mid-run must not affect the result: the
// dead member's leases are revoked and its vertices recomputed elsewhere.
func TestElasticKillWorker(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 4)
	killAt := make(chan struct{})
	opts.OnProgress = progressTrigger(5, killAt)

	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 200*time.Microsecond))
	defer h.Close()
	go func() {
		<-killAt
		h.Kill(0)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res *cluster.Result[int32]
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := m.Run(ctx)
		resCh <- outcome{res, err}
	}()
	for i := 0; i < 4; i++ {
		if _, err := h.Add(ctx); err != nil {
			t.Fatal(err)
		}
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	equalMatrices(t, "kill-worker", out.res.Matrix(), want)
	if out.res.Stats.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", out.res.Stats.Deaths)
	}
	if out.res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64", out.res.Stats.Tasks)
	}
	if err := h.Err(0); err == nil {
		t.Fatal("killed worker exited cleanly")
	}
}

// A worker joining mid-run must be admitted and pull computable vertices.
func TestElasticJoinMidRun(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 1)
	tr := trace.New()
	opts.Trace = tr

	joinAt := make(chan struct{})
	opts.OnProgress = progressTrigger(3, joinAt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 200*time.Microsecond))
	defer h.Close()
	go func() {
		<-joinAt
		if _, err := h.Add(ctx); err != nil {
			t.Errorf("mid-run join: %v", err)
		}
	}()

	if _, err := h.Add(ctx); err != nil {
		t.Fatal(err)
	}
	h.Slow(0, 5*time.Millisecond) // keep the run alive for the joiner

	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "join-mid-run", res.Matrix(), want)
	if res.Stats.Joins != 2 {
		t.Fatalf("joins = %d, want 2", res.Stats.Joins)
	}
	members := m.Registry().Members()
	if len(members) != 2 {
		t.Fatalf("members = %d, want 2", len(members))
	}
	if members[1].Completed == 0 {
		t.Fatal("mid-run joiner computed no vertices")
	}
	// The join must be visible to tracing.
	joins := 0
	for _, e := range tr.MemberEvents() {
		if e.Label == "active" {
			joins++
		}
	}
	if joins < 2 {
		t.Fatalf("trace shows %d activations, want >= 2", joins)
	}
}

// A master killed mid-run must resume from its checkpoint: restored
// vertices are not recomputed and the result is still correct.
func TestMasterRestartFromCheckpoint(t *testing.T) {
	prob, want, spec := testProblem(t)
	ckpt := t.TempDir() + "/run.ckpt"

	opts := testOptions(spec, 2)
	opts.CheckpointPath = ckpt
	ctx1, cancel1 := context.WithCancel(context.Background())
	stopAt := make(chan struct{})
	opts.OnProgress = progressTrigger(20, stopAt)
	go func() {
		<-stopAt
		cancel1()
	}()

	m1, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h1 := cluster.NewHarness(prob, m1.Addr(), testWorkerOptions(spec, 500*time.Microsecond))
	go func() {
		for i := 0; i < 2; i++ {
			if _, err := h1.Add(ctx1); err != nil {
				t.Errorf("phase-1 worker: %v", err)
			}
		}
	}()
	if _, err := m1.Run(ctx1); err == nil {
		t.Fatal("cancelled master reported success")
	}
	cancel1()
	h1.Close()

	// Second incarnation, same checkpoint path.
	opts = testOptions(spec, 2)
	opts.CheckpointPath = ckpt
	m2, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h2 := cluster.NewHarness(prob, m2.Addr(), testWorkerOptions(spec, 0))
	defer h2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() {
		for i := 0; i < 2; i++ {
			if _, err := h2.Add(ctx2); err != nil {
				t.Errorf("phase-2 worker: %v", err)
			}
		}
	}()
	res, err := m2.Run(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "restart", res.Matrix(), want)
	if res.Stats.Restored < 20 {
		t.Fatalf("restored = %d, want >= 20 (phase 1 completed at least that many)", res.Stats.Restored)
	}
	if res.Stats.Restored+res.Stats.Tasks != 64 {
		t.Fatalf("restored %d + tasks %d != 64: completed vertices were recomputed",
			res.Stats.Restored, res.Stats.Tasks)
	}
}

// A partitioned link (TCP open, no bytes flowing) must be detected by the
// heartbeat deadline and the member's work reassigned.
func TestPartitionedMemberDeclaredDead(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 3)

	cutAt := make(chan struct{})
	opts.OnProgress = progressTrigger(5, cutAt)
	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 300*time.Microsecond))
	defer h.Close()
	go func() {
		<-cutAt
		h.Partition(0)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := h.Add(ctx); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "partition", res.Matrix(), want)
	if res.Stats.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1 (partitioned member)", res.Stats.Deaths)
	}
}

// A worker whose flags produce a different problem spec must be refused
// at admission, and the cluster must keep working afterwards.
func TestClusterRejectsSpecMismatch(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 1)
	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res *cluster.Result[int32]
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := m.Run(ctx)
		resCh <- outcome{res, err}
	}()

	badSpec := spec
	badSpec.Seed = 99
	wopts := testWorkerOptions(badSpec, 0)
	wopts.Addr = m.Addr()
	err = cluster.RunWorker(ctx, prob, wopts)
	if err == nil || !strings.Contains(err.Error(), "problem spec mismatch") {
		t.Fatalf("mismatched worker error = %v, want spec-mismatch rejection", err)
	}

	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 0))
	defer h.Close()
	if _, err := h.Add(ctx); err != nil {
		t.Fatal(err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	equalMatrices(t, "after-rejection", out.res.Matrix(), want)
	if out.res.Stats.Joins != 1 {
		t.Fatalf("joins = %d, want 1 (the rejected worker must not count)", out.res.Stats.Joins)
	}
}
