package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
)

// BenchmarkElasticRecovery measures the cost of elasticity: the "healthy"
// case is a full 4-worker run with heartbeats on (the steady-state
// overhead of the membership layer), and "kill-1-of-4" is the same run
// with one worker killed a few vertices in — the delta is the
// time-to-recover (detect the death, revoke the leases, recompute the
// lost vertices elsewhere).
func BenchmarkElasticRecovery(b *testing.B) {
	run := func(b *testing.B, kill bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prob, _, spec := testProblem(b)
			opts := testOptions(spec, 4)
			killAt := make(chan struct{})
			if kill {
				opts.OnProgress = progressTrigger(8, killAt)
			}
			m, err := cluster.NewMaster(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 100*time.Microsecond))
			if kill {
				go func() {
					<-killAt
					h.Kill(0)
				}()
			}
			ctx, cancel := context.WithCancel(context.Background())
			resCh := make(chan error, 1)
			b.StartTimer()
			go func() {
				_, err := m.Run(ctx)
				resCh <- err
			}()
			for w := 0; w < 4; w++ {
				if _, err := h.Add(ctx); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-resCh; err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			h.Close()
			cancel()
			b.StartTimer()
		}
	}
	b.Run("healthy", func(b *testing.B) { run(b, false) })
	b.Run("kill-1-of-4", func(b *testing.B) { run(b, true) })
}
