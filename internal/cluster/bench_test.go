package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// BenchmarkElasticRecovery measures the cost of elasticity: the "healthy"
// case is a full 4-worker run with heartbeats on (the steady-state
// overhead of the membership layer), and "kill-1-of-4" is the same run
// with one worker killed a few vertices in — the delta is the
// time-to-recover (detect the death, revoke the leases, recompute the
// lost vertices elsewhere).
func BenchmarkElasticRecovery(b *testing.B) {
	run := func(b *testing.B, kill bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prob, _, spec := testProblem(b)
			opts := testOptions(spec, 4)
			killAt := make(chan struct{})
			if kill {
				opts.OnProgress = progressTrigger(8, killAt)
			}
			m, err := cluster.NewMaster(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 100*time.Microsecond))
			if kill {
				go func() {
					<-killAt
					h.Kill(0)
				}()
			}
			ctx, cancel := context.WithCancel(context.Background())
			resCh := make(chan error, 1)
			b.StartTimer()
			go func() {
				_, err := m.Run(ctx)
				resCh <- err
			}()
			for w := 0; w < 4; w++ {
				if _, err := h.Add(ctx); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-resCh; err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			h.Close()
			cancel()
			b.StartTimer()
		}
	}
	b.Run("healthy", func(b *testing.B) { run(b, false) })
	b.Run("kill-1-of-4", func(b *testing.B) { run(b, true) })
}

// swggBench is the Smith-Waterman instance for the straggler benchmark:
// an 8x8 processor grid whose narrow wavefront makes a slow worker gate
// whole diagonals.
func swggBench(tb testing.TB) (core.Problem[int32], cluster.Spec) {
	a := dp.RandomDNA(64, 61)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, 62)
	s := dp.NewSWGG(a, b)
	spec := cluster.Spec{App: "swgg", N: 64, Seed: 61, Proc: dag.Square(8), Thread: dag.Square(4)}
	return s.Problem(), spec
}

// BenchmarkStragglerSpeculation measures the scenario speculation exists
// for, on the SW kernel: four workers, one slowed ~10x per task by the
// proxy harness. With speculation off every wavefront diagonal the slow
// worker touches stalls behind it; with it on, backups race past the
// straggler. The spec-off/spec-on ns-per-op ratio is the makespan
// improvement recorded in EXPERIMENTS.md.
func BenchmarkStragglerSpeculation(b *testing.B) {
	run := func(b *testing.B, speculate bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prob, spec := swggBench(b)
			opts := testOptions(spec, 4)
			opts.Speculate = speculate
			opts.CheckInterval = 10 * time.Millisecond
			m, err := cluster.NewMaster(prob, opts)
			if err != nil {
				b.Fatal(err)
			}
			// 64 cells x 100µs ≈ 6.4ms of emulated work per vertex; the
			// 60ms proxy delay makes worker 0 roughly 10x slower.
			h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 100*time.Microsecond))
			ctx, cancel := context.WithCancel(context.Background())
			resCh := make(chan error, 1)
			b.StartTimer()
			go func() {
				_, err := m.Run(ctx)
				resCh <- err
			}()
			// Slow worker 0 before the quorum completes, so it straggles
			// from its first task on.
			if _, err := h.Add(ctx); err != nil {
				b.Fatal(err)
			}
			h.Slow(0, 60*time.Millisecond)
			for w := 1; w < 4; w++ {
				if _, err := h.Add(ctx); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-resCh; err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			h.Close()
			cancel()
			b.StartTimer()
		}
	}
	b.Run("spec-off", func(b *testing.B) { run(b, false) })
	b.Run("spec-on", func(b *testing.B) { run(b, true) })
}
