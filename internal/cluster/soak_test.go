//go:build soak

package cluster_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestSoakBatchedFaults hammers the batched dispatch path with membership
// churn: many short elastic runs, each with a randomized batch bound and a
// randomly chosen mid-run fault (abrupt kill, silent partition, graceful
// leave) against one of three workers. Every run must converge to the
// sequential matrix with Tasks equal to the vertex count — a lost vertex
// hangs the run into RunTimeout, a double-counted one inflates Tasks, and
// a mis-ordered batch corrupts the matrix. Enable with scripts/ci.sh
// -soak (build tag "soak").
func TestSoakBatchedFaults(t *testing.T) {
	const runs = 200
	const vertices = 64 // 8x8 processor grid of the shared test problem
	prob, want, spec := testProblem(t)
	rng := rand.New(rand.NewSource(1))

	for run := 0; run < runs; run++ {
		batch := 1 + rng.Intn(8)
		fault := rng.Intn(3) // 0 kill, 1 partition+heal, 2 leave
		victim := rng.Intn(3)
		threshold := 3 + rng.Intn(vertices/2)

		opts := testOptions(spec, 3)
		opts.Batch = batch
		faultAt := make(chan struct{})
		opts.OnProgress = progressTrigger(threshold, faultAt)

		m, err := cluster.NewMaster(prob, opts)
		if err != nil {
			t.Fatal(err)
		}
		wopts := testWorkerOptions(spec, 50*time.Microsecond)
		wopts.Run.Batch = batch
		h := cluster.NewHarness(prob, m.Addr(), wopts)

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-faultAt
			switch fault {
			case 0:
				h.Kill(victim)
			case 1:
				h.Partition(victim)
				time.Sleep(4 * opts.HeartbeatInterval)
				h.Heal(victim)
			case 2:
				h.Leave(victim)
			}
		}()

		type outcome struct {
			res *cluster.Result[int32]
			err error
		}
		resCh := make(chan outcome, 1)
		go func() {
			res, err := m.Run(ctx)
			resCh <- outcome{res, err}
		}()
		for i := 0; i < 3; i++ {
			if _, err := h.Add(ctx); err != nil {
				t.Fatal(err)
			}
		}
		out := <-resCh
		if out.err != nil {
			t.Fatalf("run %d (batch=%d fault=%d victim=%d at=%d): %v",
				run, batch, fault, victim, threshold, out.err)
		}
		if out.res.Stats.Tasks != vertices {
			t.Fatalf("run %d (batch=%d fault=%d): tasks = %d, want %d (lost or double-counted vertex)\nstats: %v",
				run, batch, fault, out.res.Stats.Tasks, vertices, out.res.Stats)
		}
		equalMatrices(t, "soak", out.res.Matrix(), want)
		cancel()
		h.Close()
	}
}
