//go:build soak

package cluster_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/testseed"
)

// TestSoakBatchedFaults hammers the batched dispatch path with membership
// churn while straggler mitigation is live: many short elastic runs, each
// with a randomized batch bound, speculation always on, stealing on for
// half the runs, and a randomly chosen mid-run fault (abrupt kill, silent
// partition, graceful leave, heavy slowdown) against one of three
// workers. Every run must converge to the sequential matrix with Tasks
// equal to the vertex count and no leaked attempt or lease — a lost
// vertex hangs the run into RunTimeout, a double-counted one inflates
// Tasks, a mis-ordered batch corrupts the matrix, and a speculative race
// that loses track of an attempt shows up in Leaked. Enable with
// scripts/ci.sh -soak (build tag "soak").
func TestSoakBatchedFaults(t *testing.T) {
	const runs = 200
	const vertices = 64 // 8x8 processor grid of the shared test problem
	prob, want, spec := testProblem(t)
	rng := rand.New(rand.NewSource(testseed.Seed(t, 1)))

	for run := 0; run < runs; run++ {
		batch := 1 + rng.Intn(8)
		fault := rng.Intn(4) // 0 kill, 1 partition+heal, 2 leave, 3 slow
		victim := rng.Intn(3)
		threshold := 3 + rng.Intn(vertices/2)
		steal := rng.Intn(2) == 1

		opts := testOptions(spec, 3)
		opts.Batch = batch
		opts.Speculate = true
		opts.CheckInterval = 10 * time.Millisecond
		opts.Steal = steal
		faultAt := make(chan struct{})
		opts.OnProgress = progressTrigger(threshold, faultAt)
		death := make(chan struct{}, 1)
		opts.OnDeath = func(int) {
			select {
			case death <- struct{}{}:
			default:
			}
		}

		m, err := cluster.NewMaster(prob, opts)
		if err != nil {
			t.Fatal(err)
		}
		wopts := testWorkerOptions(spec, 50*time.Microsecond)
		wopts.Run.Batch = batch
		if steal {
			wopts.HungerAfter = 15 * time.Millisecond
		}
		h := cluster.NewHarness(prob, m.Addr(), wopts)

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-faultAt
			switch fault {
			case 0:
				h.Kill(victim)
			case 1:
				h.Partition(victim)
				// Hold the partition until the heartbeat sweep declares the
				// victim dead (bounded by the run's own RunTimeout).
				select {
				case <-death:
				case <-ctx.Done():
				}
				h.Heal(victim)
			case 2:
				h.Leave(victim)
			case 3:
				// Not a membership fault: a straggler the speculative path
				// must race past.
				h.Slow(victim, 50*time.Millisecond)
			}
		}()

		type outcome struct {
			res *cluster.Result[int32]
			err error
		}
		resCh := make(chan outcome, 1)
		go func() {
			res, err := m.Run(ctx)
			resCh <- outcome{res, err}
		}()
		for i := 0; i < 3; i++ {
			if _, err := h.Add(ctx); err != nil {
				t.Fatal(err)
			}
		}
		out := <-resCh
		if out.err != nil {
			t.Fatalf("run %d (batch=%d fault=%d victim=%d at=%d): %v",
				run, batch, fault, victim, threshold, out.err)
		}
		if out.res.Stats.Tasks != vertices {
			t.Fatalf("run %d (batch=%d fault=%d): tasks = %d, want %d (lost or double-counted vertex)\nstats: %v",
				run, batch, fault, out.res.Stats.Tasks, vertices, out.res.Stats)
		}
		if out.res.Stats.Leaked != 0 {
			t.Fatalf("run %d (batch=%d fault=%d steal=%v): %d attempts/leases leaked\nstats: %v",
				run, batch, fault, steal, out.res.Stats.Leaked, out.res.Stats)
		}
		equalMatrices(t, "soak", out.res.Matrix(), want)
		cancel()
		h.Close()
	}
}
