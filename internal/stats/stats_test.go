package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sample(ds ...time.Duration) *Sample {
	var s Sample
	for _, d := range ds {
		s.Add(d)
	}
	return &s
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample must be all zeros")
	}
	if s.RelStddev() != 0 {
		t.Fatal("RelStddev of empty sample")
	}
}

func TestBasicStats(t *testing.T) {
	s := sample(1*time.Second, 3*time.Second, 2*time.Second)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != time.Second || s.Max() != 3*time.Second {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 2*time.Second || s.Median() != 2*time.Second {
		t.Fatalf("mean/median = %v/%v", s.Mean(), s.Median())
	}
	// Population stddev of {1,2,3}s = sqrt(2/3)s.
	want := time.Duration(float64(time.Second) * math.Sqrt(2.0/3.0))
	if diff := s.Stddev() - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("stddev = %v, want ~%v", s.Stddev(), want)
	}
}

func TestMedianEven(t *testing.T) {
	s := sample(4*time.Second, 1*time.Second, 3*time.Second, 2*time.Second)
	if s.Median() != 2*time.Second {
		t.Fatalf("median = %v (lower middle expected)", s.Median())
	}
}

func TestSingleMeasurement(t *testing.T) {
	s := sample(5 * time.Second)
	if s.Stddev() != 0 || s.Median() != 5*time.Second {
		t.Fatal("single measurement stats wrong")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Efficiency(10*time.Second, 2*time.Second, 10); got != 0.5 {
		t.Fatalf("Efficiency = %v", got)
	}
	if Speedup(time.Second, 0) != 0 || Efficiency(time.Second, time.Second, 0) != 0 {
		t.Fatal("zero guards failed")
	}
}

// Property: min <= median <= max and min <= mean <= max.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(time.Duration(r))
		}
		return s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: median matches a direct sort-based computation.
func TestMedianProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(r)
			s.Add(ds[i])
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return s.Median() == ds[(len(ds)-1)/2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	s := sample(100*time.Millisecond, 110*time.Millisecond, 90*time.Millisecond)
	if got := s.String(); got == "" {
		t.Fatal("empty String")
	}
}
