// Package stats provides the small descriptive-statistics helpers the
// benchmark harness uses for repeated measurements: wall-clock runs on a
// shared machine are noisy, so figures report the median of several
// repetitions with a dispersion estimate.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a set of duration measurements.
type Sample struct {
	ds []time.Duration
}

// Add appends a measurement.
func (s *Sample) Add(d time.Duration) { s.ds = append(s.ds, d) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.ds) }

// Min returns the smallest measurement (0 when empty).
func (s *Sample) Min() time.Duration {
	if len(s.ds) == 0 {
		return 0
	}
	min := s.ds[0]
	for _, d := range s.ds[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the largest measurement (0 when empty).
func (s *Sample) Max() time.Duration {
	var max time.Duration
	for _, d := range s.ds {
		if d > max {
			max = d
		}
	}
	return max
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() time.Duration {
	if len(s.ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.ds {
		sum += d
	}
	return sum / time.Duration(len(s.ds))
}

// Median returns the middle measurement (lower of the two middles for
// even counts; 0 when empty).
func (s *Sample) Median() time.Duration {
	if len(s.ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// Stddev returns the population standard deviation (0 for fewer than two
// measurements).
func (s *Sample) Stddev() time.Duration {
	if len(s.ds) < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, d := range s.ds {
		diff := float64(d) - mean
		acc += diff * diff
	}
	return time.Duration(math.Sqrt(acc / float64(len(s.ds))))
}

// RelStddev returns the standard deviation as a fraction of the mean
// (0 when the mean is zero).
func (s *Sample) RelStddev() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return float64(s.Stddev()) / float64(m)
}

// String summarizes the sample as "median ±rel%".
func (s *Sample) String() string {
	return fmt.Sprintf("%v ±%.0f%%", s.Median().Round(time.Millisecond), 100*s.RelStddev())
}

// Speedup is baseline divided by measured (0 when measured is zero).
func Speedup(baseline, measured time.Duration) float64 {
	if measured == 0 {
		return 0
	}
	return float64(baseline) / float64(measured)
}

// Efficiency is speedup divided by the core count.
func Efficiency(baseline, measured time.Duration, cores int) float64 {
	if cores == 0 {
		return 0
	}
	return Speedup(baseline, measured) / float64(cores)
}
