// Package cli holds the problem-construction and reporting helpers shared
// by the command-line tools. Multi-process deployments (easyhps-launch +
// easyhps-worker) must build bit-identical problems on every rank, so the
// construction is centralized here and driven by (app, n, seed).
package cli

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dp"
)

// Apps lists the applications available to the CLI tools (int32-celled
// ones; matrix-chain uses int64 and is exposed only by easyhps-run).
var Apps = []string{"swgg", "nussinov", "editdist", "lcs", "knapsack", "nw"}

// Build constructs the DP problem for app with matrix side n and workload
// seed. The returned report function pretty-prints the application-level
// result (alignment, structure, distance, ...) from the completed matrix.
func Build(app string, n int, seed int64) (core.Problem[int32], func(w io.Writer, m [][]int32), error) {
	switch strings.ToLower(app) {
	case "swgg":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, seed+1)
		s := dp.NewSWGG(a, b)
		report := func(w io.Writer, m [][]int32) {
			al := s.Traceback(m)
			fmt.Fprintf(w, "best local alignment score: %d (at A[%d:], B[%d:])\n", al.Score, al.StartA, al.StartB)
			printAlignment(w, al)
		}
		return s.Problem(), report, nil
	case "nussinov":
		nu := dp.NewNussinov(dp.RandomRNA(n, seed))
		report := func(w io.Writer, m [][]int32) {
			st := nu.Structure(m)
			fmt.Fprintf(w, "max base pairs: %d\n", m[0][n-1])
			fmt.Fprintf(w, "seq: %s\n", nu.S)
			fmt.Fprintf(w, "str: %s\n", st)
		}
		return nu.Problem(), report, nil
	case "editdist":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, seed+1)
		e := dp.NewEditDistance(a, b)
		report := func(w io.Writer, m [][]int32) {
			fmt.Fprintf(w, "edit distance: %d\n", e.Distance(m))
		}
		return e.Problem(), report, nil
	case "lcs":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, seed+1)
		l := dp.NewLCS(a, b)
		report := func(w io.Writer, m [][]int32) {
			fmt.Fprintf(w, "LCS length: %d\n", m[n-1][n-1])
		}
		return l.Problem(), report, nil
	case "nw":
		a := dp.RandomDNA(n, seed)
		b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, seed+1)
		nw := dp.NewNeedlemanWunsch(a, b)
		report := func(w io.Writer, m [][]int32) {
			al := nw.Traceback(m)
			fmt.Fprintf(w, "global alignment score: %d\n", al.Score)
			printAlignment(w, al)
		}
		return nw.Problem(), report, nil
	case "knapsack":
		k := dp.NewKnapsack(n, 4*n, seed)
		report := func(w io.Writer, m [][]int32) {
			fmt.Fprintf(w, "knapsack best value: %d (items=%d capacity=%d)\n", k.Best(m), n, 4*n)
		}
		return k.Problem(), report, nil
	}
	return core.Problem[int32]{}, nil, fmt.Errorf("unknown app %q (have: %s)", app, strings.Join(Apps, ", "))
}

// printAlignment pretty-prints a gapped alignment in 60-column chunks with
// a match line.
func printAlignment(w io.Writer, al dp.Alignment) {
	const width = 60
	for off := 0; off < len(al.RowA); off += width {
		end := off + width
		if end > len(al.RowA) {
			end = len(al.RowA)
		}
		mid := make([]byte, end-off)
		for k := range mid {
			switch {
			case al.RowA[off+k] == al.RowB[off+k]:
				mid[k] = '|'
			case al.RowA[off+k] == '-' || al.RowB[off+k] == '-':
				mid[k] = ' '
			default:
				mid[k] = '.'
			}
		}
		fmt.Fprintf(w, "A  %s\n   %s\nB  %s\n\n", al.RowA[off:end], mid, al.RowB[off:end])
	}
}
