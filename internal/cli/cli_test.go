package cli

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
)

func runApp(t *testing.T, app string, n int) string {
	t.Helper()
	prob, report, err := Build(app, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square((n + 3) / 4),
		ThreadPartition: dag.Square((n + 15) / 16),
		RunTimeout:      2 * time.Minute,
	}
	res, err := core.Run(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report(&buf, res.Matrix())
	return buf.String()
}

func TestBuildAllApps(t *testing.T) {
	wantWords := map[string]string{
		"swgg":     "alignment score",
		"nussinov": "base pairs",
		"editdist": "edit distance",
		"lcs":      "LCS length",
		"knapsack": "best value",
		"nw":       "global alignment score",
	}
	for _, app := range Apps {
		out := runApp(t, app, 48)
		if !strings.Contains(out, wantWords[app]) {
			t.Errorf("%s report %q missing %q", app, out, wantWords[app])
		}
	}
}

func TestBuildUnknownApp(t *testing.T) {
	if _, _, err := Build("no-such-app", 10, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	p1, _, err := Build("swgg", 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Build("swgg", 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Same flags must produce the same problem (multi-process ranks rely
	// on it). Compare through a tiny run on each.
	cfg := core.Config{Slaves: 1, Threads: 1, ProcPartition: dag.Square(8), ThreadPartition: dag.Square(4), RunTimeout: time.Minute}
	r1, err := core.Run(p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Run(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Matrix(), r2.Matrix()
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatalf("same flags produced different problems at (%d,%d)", i, j)
			}
		}
	}
}
