package dag

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// drainParser executes the whole DAG through the parser in a random order
// among computable vertices and returns the completion order.
func drainParser(t *testing.T, gr *Graph, rng *rand.Rand) []int32 {
	t.Helper()
	p := NewParser(gr)
	ready := append([]int32(nil), p.InitialReady()...)
	var order []int32
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		id := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		ready = append(ready, p.Complete(id)...)
	}
	if !p.Finished() {
		t.Fatalf("parser not finished: %d vertices remain", p.Remaining())
	}
	return order
}

func TestParserCompletesWholeDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, pat := range libraryPatterns() {
		gr := Build(pat, MatrixGeometry(Square(15), Square(4)))
		order := drainParser(t, gr, rng)
		if len(order) != gr.N {
			t.Errorf("%s: completed %d of %d vertices", pat.Name(), len(order), gr.N)
		}
	}
}

// Property: any random drain order is a valid topological order (every
// precursor completes before its successor) — for every library pattern.
func TestParserEmitsTopologicalOrder(t *testing.T) {
	for _, pat := range libraryPatterns() {
		pat := pat
		f := func(seed int64, n, b uint8) bool {
			g := MatrixGeometry(Square(int(n%20)+1), Square(int(b%5)+1))
			gr := Build(pat, g)
			rng := rand.New(rand.NewSource(seed))
			p := NewParser(gr)
			ready := append([]int32(nil), p.InitialReady()...)
			done := make(map[int32]bool)
			var preBuf []Pos
			for len(ready) > 0 {
				k := rng.Intn(len(ready))
				id := ready[k]
				ready[k] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				preBuf = pat.Precursors(g, gr.Vertex(id).Pos, preBuf[:0])
				for _, q := range preBuf {
					if !done[g.ID(q)] {
						return false
					}
				}
				done[id] = true
				ready = append(ready, p.Complete(id)...)
			}
			return len(done) == gr.N
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", pat.Name(), err)
		}
	}
}

func TestParserConcurrentWorkers(t *testing.T) {
	gr := Build(Wavefront{}, MatrixGeometry(Square(40), Square(2))) // 400 vertices
	p := NewParser(gr)
	work := make(chan int32, gr.N)
	for _, id := range p.InitialReady() {
		work <- id
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				newly := p.Complete(id)
				mu.Lock()
				completed++
				last := completed == gr.N
				mu.Unlock()
				for _, n := range newly {
					work <- n
				}
				if last {
					close(work)
				}
			}
		}()
	}
	wg.Wait()
	if !p.Finished() {
		t.Fatalf("parser not finished after concurrent drain: %d remain", p.Remaining())
	}
}

func TestParserPanics(t *testing.T) {
	gr := Build(Wavefront{}, MatrixGeometry(Square(4), Square(2)))
	p := NewParser(gr)
	ready := p.InitialReady()
	// Completing a non-computable vertex panics.
	mustPanic(t, func() { p.Complete(gr.Geom.ID(Pos{1, 1})) })
	// Double completion panics.
	p.Complete(ready[0])
	mustPanic(t, func() { p.Complete(ready[0]) })
}

func TestParserRemaining(t *testing.T) {
	gr := Build(Wavefront{}, MatrixGeometry(Square(4), Square(2)))
	p := NewParser(gr)
	if p.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", p.Remaining())
	}
	ready := p.InitialReady()
	p.Complete(ready[0])
	if p.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", p.Remaining())
	}
	if !p.IsDone(ready[0]) {
		t.Error("IsDone(completed) = false")
	}
}

func TestGraphExisting(t *testing.T) {
	gr := Build(Triangular{}, MatrixGeometry(Square(9), Square(3)))
	ids := gr.Existing()
	if len(ids) != gr.N {
		t.Fatalf("Existing returned %d ids, N = %d", len(ids), gr.N)
	}
	for _, id := range ids {
		if !gr.Vertex(id).Exists {
			t.Fatalf("Existing returned nonexistent vertex %d", id)
		}
	}
}
