package dag

import (
	"fmt"
	"io"
)

// ValidateTopology checks the model invariant on a concrete geometry:
// every data dependency of every block must be reachable from the block
// through topological precursor edges, so that when a block becomes
// computable all blocks it reads from are complete. Custom patterns should
// be validated with this before use.
func ValidateTopology(pat Pattern, g Geometry) error {
	gr := Build(pat, g)
	// reach[v] = set of ancestor ids of v, built in topological order.
	order, err := topoOrder(gr)
	if err != nil {
		return err
	}
	anc := make([]map[int32]bool, len(gr.Verts))
	var preBuf []Pos
	for _, id := range order {
		v := gr.Vertex(id)
		set := make(map[int32]bool)
		preBuf = pat.Precursors(g, v.Pos, preBuf[:0])
		for _, q := range preBuf {
			qid := g.ID(q)
			set[qid] = true
			for a := range anc[qid] {
				set[a] = true
			}
		}
		anc[id] = set
		for _, d := range v.DataPre {
			if d != id && !set[d] {
				return fmt.Errorf("dag: pattern %s: data dependency %v of block %v is not a topological ancestor",
					pat.Name(), g.PosOf(d), v.Pos)
			}
		}
	}
	return nil
}

// ValidateAcyclic checks that the block DAG of pat over g has no cycles
// and that every existing vertex is reachable from the roots (i.e. the
// parsing process terminates with all vertices removed).
func ValidateAcyclic(pat Pattern, g Geometry) error {
	gr := Build(pat, g)
	order, err := topoOrder(gr)
	if err != nil {
		return err
	}
	if len(order) != gr.N {
		return fmt.Errorf("dag: pattern %s: %d of %d vertices unreachable from roots (cycle or dangling precursor)",
			pat.Name(), gr.N-len(order), gr.N)
	}
	return nil
}

// topoOrder returns a topological order of the existing vertices via
// Kahn's algorithm. Vertices left unprocessed indicate a cycle.
func topoOrder(gr *Graph) ([]int32, error) {
	remaining := make([]int32, len(gr.Verts))
	for id := range gr.Verts {
		remaining[id] = gr.Verts[id].PreCnt
	}
	queue := gr.Roots()
	order := make([]int32, 0, gr.N)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range gr.Vertex(id).Post {
			remaining[s]--
			if remaining[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != gr.N {
		return order, fmt.Errorf("dag: graph of %s has a cycle", gr.Pattern.Name())
	}
	return order, nil
}

// ValidateCellOrder checks that CellOrder visits exactly the existing
// cells of every block of g exactly once.
func ValidateCellOrder(pat Pattern, g Geometry) error {
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			p := Pos{Row: r, Col: c}
			if !pat.BlockExists(g, p) {
				continue
			}
			rect := g.Rect(p)
			seen := make(map[[2]int]int)
			pat.CellOrder(rect, func(i, j int) {
				seen[[2]int{i, j}]++
			})
			for i := rect.Row0; i < rect.Row0+rect.Rows; i++ {
				for j := rect.Col0; j < rect.Col0+rect.Cols; j++ {
					want := 0
					if pat.CellExists(i, j) {
						want = 1
					}
					if seen[[2]int{i, j}] != want {
						return fmt.Errorf("dag: pattern %s block %v: cell (%d,%d) visited %d times, want %d",
							pat.Name(), p, i, j, seen[[2]int{i, j}], want)
					}
				}
			}
		}
	}
	return nil
}

// WriteDOT renders the block DAG of pat over g in Graphviz DOT format:
// one node per existing block labelled with its grid position, solid
// edges for topological precursors and dashed edges for the additional
// data dependencies. Useful for documenting custom patterns
// (easyhps-dag -dot).
func WriteDOT(w io.Writer, pat Pattern, g Geometry) error {
	gr := Build(pat, g)
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", pat.Name()); err != nil {
		return err
	}
	name := func(p Pos) string { return fmt.Sprintf("b%d_%d", p.Row, p.Col) }
	var buf []Pos
	for _, id := range gr.Existing() {
		v := gr.Vertex(id)
		if _, err := fmt.Fprintf(w, "  %s [label=\"%d,%d\"];\n", name(v.Pos), v.Pos.Row, v.Pos.Col); err != nil {
			return err
		}
	}
	for _, id := range gr.Existing() {
		v := gr.Vertex(id)
		pre := make(map[Pos]bool)
		buf = pat.Precursors(g, v.Pos, buf[:0])
		for _, q := range buf {
			pre[q] = true
			if _, err := fmt.Fprintf(w, "  %s -> %s;\n", name(q), name(v.Pos)); err != nil {
				return err
			}
		}
		for _, d := range v.DataPre {
			q := g.PosOf(d)
			if pre[q] {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %s -> %s [style=dashed, color=gray];\n", name(q), name(v.Pos)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
