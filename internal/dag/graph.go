package dag

import "fmt"

// Vertex is one node of a built block DAG. It mirrors the DAGElement
// structure of the paper's user API: a prefix degree (number of direct
// precursors), the postfix list (successor ids) and the data-dependency
// prefix list.
type Vertex struct {
	// Pos is the block-grid position of the vertex.
	Pos Pos
	// Exists is false for grid positions outside the computed region
	// (e.g. below the diagonal of a triangular pattern); such vertices
	// never appear in the schedule.
	Exists bool
	// PreCnt is the prefix degree: the number of direct topological
	// precursors. Vertices with PreCnt 0 are immediately computable.
	PreCnt int32
	// Post lists the ids of the direct successors (the postfix list).
	Post []int32
	// DataPre lists the ids of the data-dependency precursors — the
	// blocks whose contents must be available before this vertex's
	// sub-task can run.
	DataPre []int32
}

// Graph is the built DAG Data Driven Model for one geometry: a dense array
// of vertices over the block grid, with precursor counts and successor
// lists precomputed from the pattern.
type Graph struct {
	Pattern Pattern
	Geom    Geometry
	// Verts is indexed by Geometry.ID; positions that do not exist carry
	// Exists == false.
	Verts []Vertex
	// N is the number of existing vertices.
	N int
}

// Build constructs the block DAG of pattern pat over geometry g.
func Build(pat Pattern, g Geometry) *Graph {
	gr := &Graph{
		Pattern: pat,
		Geom:    g,
		Verts:   make([]Vertex, g.Grid.Cells()),
	}
	var preBuf, dataBuf []Pos
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			p := Pos{Row: r, Col: c}
			id := g.ID(p)
			v := &gr.Verts[id]
			v.Pos = p
			if !pat.BlockExists(g, p) {
				continue
			}
			v.Exists = true
			gr.N++
			preBuf = pat.Precursors(g, p, preBuf[:0])
			for _, q := range preBuf {
				if !g.InGrid(q) || !pat.BlockExists(g, q) {
					panic(fmt.Sprintf("dag: pattern %s reported nonexistent precursor %v of %v", pat.Name(), q, p))
				}
				v.PreCnt++
				qv := &gr.Verts[g.ID(q)]
				qv.Post = append(qv.Post, id)
			}
			dataBuf = pat.DataDeps(g, p, dataBuf[:0])
			for _, q := range dataBuf {
				if g.InGrid(q) && pat.BlockExists(g, q) {
					v.DataPre = append(v.DataPre, g.ID(q))
				}
			}
		}
	}
	return gr
}

// Vertex returns the vertex with the given id.
func (gr *Graph) Vertex(id int32) *Vertex { return &gr.Verts[id] }

// Roots returns the ids of all initially computable vertices (prefix
// degree zero), in row-major order.
func (gr *Graph) Roots() []int32 {
	var roots []int32
	for id := range gr.Verts {
		v := &gr.Verts[id]
		if v.Exists && v.PreCnt == 0 {
			roots = append(roots, int32(id))
		}
	}
	return roots
}

// Existing returns the ids of all existing vertices in row-major order.
func (gr *Graph) Existing() []int32 {
	ids := make([]int32, 0, gr.N)
	for id := range gr.Verts {
		if gr.Verts[id].Exists {
			ids = append(ids, int32(id))
		}
	}
	return ids
}
