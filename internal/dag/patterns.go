package dag

// Built-in members of the DAG Pattern Model library. Each corresponds to a
// family of DP recurrences; the names are the identifiers used by
// Lookup and by the command-line tools.
const (
	NameWavefront  = "wavefront"
	NameRowColumn  = "rowcolumn"
	NameTriangular = "triangular"
	NameDominance  = "dominance"
	NameRowOnly    = "rowonly"
	NameChain      = "chain"
)

func init() {
	Register(Wavefront{})
	Register(RowColumn{})
	Register(Triangular{})
	Register(Dominance{})
	Register(RowOnly{})
	Register(Chain{})
}

// Wavefront is the 2D/0D pattern (Algorithm 4.1 in the paper): cell (i, j)
// reads only its west, north and north-west neighbours. Edit distance,
// Needleman-Wunsch and LCS follow it. Blocks depend on the blocks
// immediately above and to the left; the north-west block is a data
// dependency reached transitively.
type Wavefront struct{}

func (Wavefront) Name() string                       { return NameWavefront }
func (Wavefront) Class() Class                       { return Class2D0D }
func (Wavefront) CellExists(i, j int) bool           { return true }
func (Wavefront) BlockExists(g Geometry, p Pos) bool { return g.InGrid(p) }

func (w Wavefront) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(w, g, Pos{p.Row - 1, p.Col}, buf)
	buf = appendIf(w, g, Pos{p.Row, p.Col - 1}, buf)
	return buf
}

func (w Wavefront) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	buf = w.Precursors(g, p, buf)
	buf = appendIf(w, g, Pos{p.Row - 1, p.Col - 1}, buf)
	return buf
}

func (Wavefront) CellOrder(r Rect, visit func(i, j int)) { rowMajor(r, visit) }

// RowColumn is the 2D/1D pattern used by Smith-Waterman with general gap
// penalties (Fig. 6 in the paper): cell (i, j) reads the whole of row i to
// its left, the whole of column j above it, and the north-west neighbour.
// Topologically a block needs only its west and north neighbours; the data
// region is the full row to the left, the full column above, and the
// north-west diagonal block.
type RowColumn struct{}

func (RowColumn) Name() string                       { return NameRowColumn }
func (RowColumn) Class() Class                       { return Class2D1D }
func (RowColumn) CellExists(i, j int) bool           { return true }
func (RowColumn) BlockExists(g Geometry, p Pos) bool { return g.InGrid(p) }

func (rc RowColumn) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(rc, g, Pos{p.Row - 1, p.Col}, buf)
	buf = appendIf(rc, g, Pos{p.Row, p.Col - 1}, buf)
	return buf
}

func (rc RowColumn) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	for c := 0; c < p.Col; c++ {
		buf = append(buf, Pos{p.Row, c})
	}
	for r := 0; r < p.Row; r++ {
		buf = append(buf, Pos{r, p.Col})
	}
	buf = appendIf(rc, g, Pos{p.Row - 1, p.Col - 1}, buf)
	return buf
}

func (RowColumn) CellOrder(r Rect, visit func(i, j int)) { rowMajor(r, visit) }

// Triangular is the 2D/1D upper-triangular pattern of Nussinov-style
// recurrences (Fig. 5 in the paper): only cells with i <= j exist; cell
// (i, j) reads cell (i+1, j), cell (i, j-1), cell (i+1, j-1) and the row
// segment F[i, k] / column segment F[k, j] for i < k < j. Blocks on the
// main block diagonal have no precursors (the recurrence's base case); a
// block depends directly on its west and south neighbours.
type Triangular struct{}

func (Triangular) Name() string             { return NameTriangular }
func (Triangular) Class() Class             { return Class2D1D }
func (Triangular) CellExists(i, j int) bool { return i <= j }

// BlockExists: the block's region intersects {i <= j} iff its smallest row
// index is <= its largest column index.
func (t Triangular) BlockExists(g Geometry, p Pos) bool {
	if !g.InGrid(p) {
		return false
	}
	r := g.Rect(p)
	return r.Row0 <= r.Col0+r.Cols-1
}

func (t Triangular) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(t, g, Pos{p.Row, p.Col - 1}, buf)
	buf = appendIf(t, g, Pos{p.Row + 1, p.Col}, buf)
	return buf
}

func (t Triangular) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	for c := p.Col - 1; c >= 0; c-- {
		buf = appendIf(t, g, Pos{p.Row, c}, buf)
	}
	for r := p.Row + 1; r < g.Grid.Rows; r++ {
		buf = appendIf(t, g, Pos{r, p.Col}, buf)
	}
	buf = appendIf(t, g, Pos{p.Row + 1, p.Col - 1}, buf)
	return buf
}

// CellOrder visits rows bottom-up and columns left-to-right so that
// (i+1, *) and (i, j-1) precede (i, j); cells below the diagonal are
// skipped.
func (t Triangular) CellOrder(r Rect, visit func(i, j int)) {
	for i := r.Row0 + r.Rows - 1; i >= r.Row0; i-- {
		j0 := r.Col0
		if j0 < i {
			j0 = i
		}
		for j := j0; j < r.Col0+r.Cols; j++ {
			visit(i, j)
		}
	}
}

// Dominance is the 2D/2D pattern (Algorithm 4.3 in the paper): cell (i, j)
// reads every cell it dominates, i.e. all (i', j') with i' < i and j' < j.
// Topologically the west and north neighbours suffice; the data region is
// the full dominated block rectangle.
type Dominance struct{}

func (Dominance) Name() string                       { return NameDominance }
func (Dominance) Class() Class                       { return Class2D2D }
func (Dominance) CellExists(i, j int) bool           { return true }
func (Dominance) BlockExists(g Geometry, p Pos) bool { return g.InGrid(p) }

func (d Dominance) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(d, g, Pos{p.Row - 1, p.Col}, buf)
	buf = appendIf(d, g, Pos{p.Row, p.Col - 1}, buf)
	return buf
}

func (d Dominance) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	for r := 0; r <= p.Row; r++ {
		for c := 0; c <= p.Col; c++ {
			if r == p.Row && c == p.Col {
				continue
			}
			buf = append(buf, Pos{r, c})
		}
	}
	return buf
}

func (Dominance) CellOrder(r Rect, visit func(i, j int)) { rowMajor(r, visit) }

// RowOnly is the pattern of recurrences where cell (i, j) reads arbitrary
// cells of row i-1 at column <= j (0/1 knapsack, Viterbi with
// left-to-right transitions). With one-row blocks, every block of the
// previous row up to the same column is both a topological precursor and a
// data dependency and block rows are fully parallel. With multi-row blocks
// the read of row i-1 can land in the block to the left of the same block
// row (row i-1 lives inside the block), so same-row west edges join the
// dependency structure.
type RowOnly struct{}

func (RowOnly) Name() string                       { return NameRowOnly }
func (RowOnly) Class() Class                       { return Class2D1D }
func (RowOnly) CellExists(i, j int) bool           { return true }
func (RowOnly) BlockExists(g Geometry, p Pos) bool { return g.InGrid(p) }

func (ro RowOnly) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	if g.Block.Rows == 1 {
		// Pure row-to-row dependence: all previous-row blocks at
		// column <= Col.
		if p.Row == 0 {
			return buf
		}
		for c := 0; c <= p.Col; c++ {
			buf = append(buf, Pos{p.Row - 1, c})
		}
		return buf
	}
	buf = appendIf(ro, g, Pos{p.Row, p.Col - 1}, buf)
	buf = appendIf(ro, g, Pos{p.Row - 1, p.Col}, buf)
	return buf
}

func (ro RowOnly) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	if g.Block.Rows == 1 {
		return ro.Precursors(g, p, buf)
	}
	for c := 0; c < p.Col; c++ {
		buf = append(buf, Pos{p.Row, c})
	}
	if p.Row > 0 {
		for c := 0; c <= p.Col; c++ {
			buf = append(buf, Pos{p.Row - 1, c})
		}
	}
	return buf
}

func (RowOnly) CellOrder(r Rect, visit func(i, j int)) { rowMajor(r, visit) }

// Chain is the 1D pattern: a single row of cells, each reading only its
// left neighbour. It degenerates the runtime to a pipeline and exists
// mostly to exercise edge cases (grid height 1).
type Chain struct{}

func (Chain) Name() string             { return NameChain }
func (Chain) Class() Class             { return Class1D0D }
func (Chain) CellExists(i, j int) bool { return i == 0 }
func (c Chain) BlockExists(g Geometry, p Pos) bool {
	return g.InGrid(p) && g.Rect(p).Row0 == 0
}

func (c Chain) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(c, g, Pos{p.Row, p.Col - 1}, buf)
	return buf
}

func (c Chain) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	return c.Precursors(g, p, buf)
}

func (Chain) CellOrder(r Rect, visit func(i, j int)) {
	if r.Row0 > 0 {
		return
	}
	for j := r.Col0; j < r.Col0+r.Cols; j++ {
		visit(0, j)
	}
}
