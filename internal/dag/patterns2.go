package dag

import "fmt"

// Additional library patterns beyond the six core ones: full-previous-row
// recurrences (Viterbi) and banded wavefronts (banded alignment).
const (
	NamePrevRow = "prevrow"
	NameBanded  = "banded"
)

func init() {
	Register(PrevRow{})
	// Banded is parameterized; a default-width instance is registered
	// for Lookup, and users construct their own widths directly.
	Register(Banded{Width: 16})
}

// PrevRow is the pattern of recurrences where cell (i, j) may read the
// ENTIRE previous row (Viterbi and other forward-pass recurrences over
// chain-structured state spaces). Cells within one row are mutually
// independent, so a row's blocks run fully parallel, but every block of
// row r depends on every block of row r-1.
//
// Because a cell may read columns to its right in the previous row,
// multi-row blocks would create cyclic east/west block dependencies;
// PrevRow therefore requires one-row blocks (or a single block column).
// Precursors panics with a descriptive error otherwise, which Build
// surfaces at DAG-construction time, long before any task runs.
type PrevRow struct{}

func (PrevRow) Name() string                       { return NamePrevRow }
func (PrevRow) Class() Class                       { return Class2D1D }
func (PrevRow) CellExists(i, j int) bool           { return true }
func (PrevRow) BlockExists(g Geometry, p Pos) bool { return g.InGrid(p) }

func (pr PrevRow) checkGeometry(g Geometry) {
	if g.Block.Rows != 1 && g.Region.Rows != 1 && g.Grid.Cols != 1 {
		panic(fmt.Sprintf("dag: the %s pattern requires one-row blocks or a single block column (got block %v over region %v): cells read the whole previous row, so multi-row multi-column blocks would depend on each other cyclically", pr.Name(), g.Block, g.Region))
	}
}

func (pr PrevRow) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	pr.checkGeometry(g)
	if p.Row == 0 {
		return buf
	}
	for c := 0; c < g.Grid.Cols; c++ {
		buf = append(buf, Pos{p.Row - 1, c})
	}
	return buf
}

func (pr PrevRow) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	return pr.Precursors(g, p, buf)
}

func (PrevRow) CellOrder(r Rect, visit func(i, j int)) { rowMajor(r, visit) }

// Banded is the wavefront pattern restricted to the diagonal band
// |i - j| <= Width: banded sequence alignment, which trades optimality for
// an O(n*Width) matrix. Blocks whose region misses the band do not exist.
type Banded struct {
	// Width is the half-width of the band.
	Width int
}

func (b Banded) Name() string { return NameBanded }
func (Banded) Class() Class   { return Class2D0D }

func (b Banded) CellExists(i, j int) bool {
	d := i - j
	if d < 0 {
		d = -d
	}
	return d <= b.Width
}

// BlockExists: the block rect intersects the band iff the diagonal
// interval [minI-maxJ, maxI-minJ] intersects [-Width, Width].
func (b Banded) BlockExists(g Geometry, p Pos) bool {
	if !g.InGrid(p) {
		return false
	}
	r := g.Rect(p)
	minD := r.Row0 - (r.Col0 + r.Cols - 1)
	maxD := (r.Row0 + r.Rows - 1) - r.Col0
	return minD <= b.Width && maxD >= -b.Width
}

// Precursors: north, west and north-west. Unlike the full wavefront, the
// north-west edge must be direct: with a narrow band the north and west
// neighbour blocks can lie entirely outside the band while the diagonal
// neighbour still feeds real cell dependencies.
func (b Banded) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	buf = appendIf(b, g, Pos{p.Row - 1, p.Col}, buf)
	buf = appendIf(b, g, Pos{p.Row, p.Col - 1}, buf)
	buf = appendIf(b, g, Pos{p.Row - 1, p.Col - 1}, buf)
	return buf
}

func (b Banded) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	return b.Precursors(g, p, buf)
}

func (b Banded) CellOrder(r Rect, visit func(i, j int)) {
	for i := r.Row0; i < r.Row0+r.Rows; i++ {
		for j := r.Col0; j < r.Col0+r.Cols; j++ {
			if b.CellExists(i, j) {
				visit(i, j)
			}
		}
	}
}
