package dag

import (
	"fmt"
	"sort"
	"sync"
)

// Class labels a pattern with the tD/eD taxonomy of Galil and Park used by
// the paper: a problem of size n is tD/eD when the matrix has O(n^t) cells
// and each cell reads O(n^e) other cells.
type Class string

const (
	Class2D0D Class = "2D/0D"
	Class2D1D Class = "2D/1D"
	Class2D2D Class = "2D/2D"
	Class1D0D Class = "1D/0D"
	Class1D1D Class = "1D/1D"
)

// Pattern is a DAG Pattern Model: it defines which cells of the DP matrix
// are computed, how blocks of cells depend on one another at any
// granularity, and in which order the cells inside one block must be
// evaluated.
//
// Block-level methods receive a Geometry so that the same pattern drives
// both the processor-level DAG (geometry over the whole matrix) and every
// thread-level DAG (geometry over one processor-level block). With a 1x1
// block size they describe the cell-level DAG itself.
type Pattern interface {
	// Name is the library identifier of the pattern.
	Name() string
	// Class is the tD/eD classification.
	Class() Class
	// CellExists reports whether cell (i, j) is part of the computation.
	CellExists(i, j int) bool
	// BlockExists reports whether block p of geometry g contains at least
	// one computed cell.
	BlockExists(g Geometry, p Pos) bool
	// Precursors appends to buf the direct topological precursors of
	// block p within geometry g and returns the extended slice. The set
	// must be minimal-ish but, together with transitivity, must cover
	// every data dependency inside the geometry's region.
	Precursors(g Geometry, p Pos, buf []Pos) []Pos
	// DataDeps appends to buf every block of geometry g whose cells the
	// recurrence may read while computing block p (the
	// data-communication level of the model).
	DataDeps(g Geometry, p Pos, buf []Pos) []Pos
	// CellOrder visits every computed cell of region r in an order that
	// respects the cell-level dependencies of the recurrence (assuming
	// all cells outside r that the cells of r read are already
	// available).
	CellOrder(r Rect, visit func(i, j int))
}

// library is the DAG Pattern Model library: built-in patterns plus
// user-registered ones.
var library = struct {
	sync.RWMutex
	m map[string]Pattern
}{m: make(map[string]Pattern)}

// Register adds a pattern to the DAG Pattern Model library. It panics if
// the name is already taken; user-defined patterns must use fresh names.
func Register(p Pattern) {
	library.Lock()
	defer library.Unlock()
	if _, dup := library.m[p.Name()]; dup {
		panic(fmt.Sprintf("dag: pattern %q registered twice", p.Name()))
	}
	library.m[p.Name()] = p
}

// Lookup retrieves a pattern from the library by name.
func Lookup(name string) (Pattern, bool) {
	library.RLock()
	defer library.RUnlock()
	p, ok := library.m[name]
	return p, ok
}

// LibraryNames returns the sorted names of all registered patterns.
func LibraryNames() []string {
	library.RLock()
	defer library.RUnlock()
	names := make([]string, 0, len(library.m))
	for n := range library.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// appendIf appends p to buf when the pattern pat considers it an existing
// block of geometry g.
func appendIf(pat Pattern, g Geometry, p Pos, buf []Pos) []Pos {
	if g.InGrid(p) && pat.BlockExists(g, p) {
		buf = append(buf, p)
	}
	return buf
}

// rowMajor visits r top-to-bottom, left-to-right.
func rowMajor(r Rect, visit func(i, j int)) {
	for i := r.Row0; i < r.Row0+r.Rows; i++ {
		for j := r.Col0; j < r.Col0+r.Cols; j++ {
			visit(i, j)
		}
	}
}
