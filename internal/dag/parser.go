package dag

import (
	"fmt"
	"sync"
)

// Parser performs the runtime DAG parsing of the paper (Fig. 8): it tracks
// the remaining prefix degree of every vertex, reports vertices that become
// computable, and "removes" finished vertices together with their outgoing
// edges by decrementing the prefix degrees of their successors. It is safe
// for concurrent use by the scheduling and worker threads.
type Parser struct {
	mu        sync.Mutex
	g         *Graph
	remaining []int32 // remaining prefix degree per vertex id
	done      []bool
	left      int // vertices not yet completed
	emitted   []bool
}

// NewParser creates a parser over the built graph.
func NewParser(g *Graph) *Parser {
	p := &Parser{
		g:         g,
		remaining: make([]int32, len(g.Verts)),
		done:      make([]bool, len(g.Verts)),
		emitted:   make([]bool, len(g.Verts)),
		left:      g.N,
	}
	for id := range g.Verts {
		p.remaining[id] = g.Verts[id].PreCnt
	}
	return p
}

// InitialReady returns the initially computable vertices (the roots of the
// DAG) and marks them emitted. It must be called exactly once, before any
// Complete call.
func (p *Parser) InitialReady() []int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	roots := p.g.Roots()
	for _, id := range roots {
		p.emitted[id] = true
	}
	return roots
}

// Complete marks vertex id finished and returns the vertices that became
// computable as a result. Completing a vertex twice is an error (the
// register table of the scheduler filters duplicate results before they
// reach the parser).
func (p *Parser) Complete(id int32) []int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.g.Vertex(id)
	if !v.Exists {
		panic(fmt.Sprintf("dag: Complete of nonexistent vertex %d", id))
	}
	if p.done[id] {
		panic(fmt.Sprintf("dag: Complete of already finished vertex %d %v", id, v.Pos))
	}
	if p.remaining[id] != 0 {
		panic(fmt.Sprintf("dag: Complete of non-computable vertex %d %v (%d precursors left)", id, v.Pos, p.remaining[id]))
	}
	p.done[id] = true
	p.left--
	var ready []int32
	for _, s := range v.Post {
		p.remaining[s]--
		if p.remaining[s] == 0 {
			if p.emitted[s] {
				panic(fmt.Sprintf("dag: vertex %d emitted twice", s))
			}
			p.emitted[s] = true
			ready = append(ready, s)
		}
	}
	return ready
}

// IsDone reports whether vertex id has been completed.
func (p *Parser) IsDone(id int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done[id]
}

// Remaining returns the number of vertices not yet completed.
func (p *Parser) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.left
}

// Finished reports whether every vertex has been completed — the parsing
// process has removed all vertices and edges from the DAG.
func (p *Parser) Finished() bool { return p.Remaining() == 0 }
