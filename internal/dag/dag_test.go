package dag

import (
	"testing"
	"testing/quick"
)

func TestGeometryGrid(t *testing.T) {
	cases := []struct {
		region Rect
		block  Size
		want   Size
	}{
		{Rect{0, 0, 10, 10}, Size{5, 5}, Size{2, 2}},
		{Rect{0, 0, 10, 10}, Size{3, 3}, Size{4, 4}},
		{Rect{0, 0, 10, 10}, Size{10, 10}, Size{1, 1}},
		{Rect{0, 0, 10, 10}, Size{20, 20}, Size{1, 1}},
		{Rect{0, 0, 1, 7}, Size{1, 2}, Size{1, 4}},
		{Rect{5, 5, 9, 4}, Size{2, 3}, Size{5, 2}},
	}
	for _, c := range cases {
		g := NewGeometry(c.region, c.block)
		if g.Grid != c.want {
			t.Errorf("NewGeometry(%v, %v).Grid = %v, want %v", c.region, c.block, g.Grid, c.want)
		}
	}
}

func TestGeometryRectClipping(t *testing.T) {
	g := NewGeometry(Rect{0, 0, 10, 10}, Size{4, 4})
	// Last block in each dimension must be clipped to 2 cells.
	r := g.Rect(Pos{2, 2})
	if r.Rows != 2 || r.Cols != 2 {
		t.Errorf("edge block rect = %v, want 2x2", r)
	}
	r = g.Rect(Pos{0, 0})
	if r.Rows != 4 || r.Cols != 4 {
		t.Errorf("interior block rect = %v, want 4x4", r)
	}
}

func TestGeometryRectOffsetRegion(t *testing.T) {
	g := NewGeometry(Rect{100, 200, 10, 10}, Size{4, 4})
	r := g.Rect(Pos{1, 1})
	if r.Row0 != 104 || r.Col0 != 204 {
		t.Errorf("offset block rect = %v, want origin (104,204)", r)
	}
}

// Property: every cell of the region belongs to exactly one block, and
// BlockOf agrees with Rect.
func TestGeometryPartitionProperty(t *testing.T) {
	f := func(rows, cols, br, bc uint8) bool {
		region := Rect{0, 0, int(rows%40) + 1, int(cols%40) + 1}
		block := Size{int(br%8) + 1, int(bc%8) + 1}
		g := NewGeometry(region, block)
		count := 0
		for r := 0; r < g.Grid.Rows; r++ {
			for c := 0; c < g.Grid.Cols; c++ {
				rect := g.Rect(Pos{r, c})
				if rect.Empty() {
					return false
				}
				count += rect.Cells()
				for i := rect.Row0; i < rect.Row0+rect.Rows; i++ {
					for j := rect.Col0; j < rect.Col0+rect.Cols; j++ {
						if g.BlockOf(i, j) != (Pos{r, c}) {
							return false
						}
					}
				}
			}
		}
		return count == region.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIDRoundTrip(t *testing.T) {
	g := NewGeometry(Rect{0, 0, 30, 17}, Size{4, 3})
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			p := Pos{r, c}
			if got := g.PosOf(g.ID(p)); got != p {
				t.Fatalf("PosOf(ID(%v)) = %v", p, got)
			}
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{2, 3, 4, 5}
	if !r.Contains(2, 3) || !r.Contains(5, 7) {
		t.Error("corner cells should be contained")
	}
	if r.Contains(6, 3) || r.Contains(2, 8) || r.Contains(1, 3) || r.Contains(2, 2) {
		t.Error("outside cells should not be contained")
	}
}

func TestNewGeometryPanics(t *testing.T) {
	mustPanic(t, func() { NewGeometry(Rect{0, 0, 0, 5}, Size{1, 1}) })
	mustPanic(t, func() { NewGeometry(Rect{0, 0, 5, 5}, Size{0, 1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
