package dag

import (
	"strings"
	"testing"
)

// Deriving the wavefront pattern from its cell reads must produce a block
// DAG equivalent to the hand-written Wavefront (same reachability), and
// pass all invariants.
func TestFromCellDepsWavefront(t *testing.T) {
	derived := FromCellDeps("derived-wavefront", nil, func(i, j int, emit func(int, int)) {
		emit(i-1, j)
		emit(i, j-1)
		emit(i-1, j-1)
	})
	g := MatrixGeometry(Square(12), Square(3))
	if err := DeriveValidate(derived, g, func(i, j int, emit func(int, int)) {
		emit(i-1, j)
		emit(i, j-1)
		emit(i-1, j-1)
	}); err != nil {
		t.Fatal(err)
	}
	// Same existing vertex set and same root as the hand-written pattern.
	dGr := Build(derived, g)
	wGr := Build(Wavefront{}, g)
	if dGr.N != wGr.N {
		t.Fatalf("derived N=%d, wavefront N=%d", dGr.N, wGr.N)
	}
	dRoots, wRoots := dGr.Roots(), wGr.Roots()
	if len(dRoots) != 1 || len(wRoots) != 1 || dRoots[0] != wRoots[0] {
		t.Fatalf("roots differ: %v vs %v", dRoots, wRoots)
	}
	// Derived data deps must include everything the hand-written pattern
	// declares (the derived set is exact, the hand-written is a superset
	// formulation at block level).
	var dBuf, wBuf []Pos
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			p := Pos{r, c}
			dBuf = derived.DataDeps(g, p, dBuf[:0])
			wBuf = (Wavefront{}).DataDeps(g, p, wBuf[:0])
			dSet := make(map[Pos]bool)
			for _, q := range dBuf {
				dSet[q] = true
			}
			for _, q := range wBuf {
				if !dSet[q] {
					t.Fatalf("block %v: hand-written dep %v missing from derived set %v", p, q, dBuf)
				}
			}
		}
	}
}

// Deriving the knapsack-style pattern (row i reads row i-1 at columns
// <= j): derived blocks must respect the same-row west edges for
// multi-row blocks, which the hand-written RowOnly handles specially.
func TestFromCellDepsKnapsack(t *testing.T) {
	weights := []int{3, 1, 4, 1, 5, 9, 2, 6}
	cellDeps := func(i, j int, emit func(int, int)) {
		if i == 0 {
			return
		}
		emit(i-1, j)
		if w := j - weights[i%len(weights)]; w >= 0 {
			emit(i-1, w)
		}
	}
	derived := FromCellDeps("derived-knapsack", nil, cellDeps)
	for _, g := range []Geometry{
		MatrixGeometry(Size{8, 20}, Size{1, 5}),
		MatrixGeometry(Size{8, 20}, Size{3, 4}), // multi-row blocks
	} {
		if err := DeriveValidate(derived, g, cellDeps); err != nil {
			t.Fatalf("%v: %v", g.Block, err)
		}
	}
}

// A bottom-up recurrence (reads i+1) must be flagged as incompatible with
// the default row-major cell order.
func TestDeriveValidateRejectsBottomUp(t *testing.T) {
	cellDeps := func(i, j int, emit func(int, int)) {
		emit(i+1, j) // reads the row below: row-major cannot work
	}
	derived := FromCellDeps("derived-bottomup", func(i, j int) bool { return i <= j }, cellDeps)
	g := MatrixGeometry(Square(8), Square(2))
	if err := DeriveValidate(derived, g, cellDeps); err == nil {
		t.Fatal("bottom-up recurrence accepted with row-major order")
	}
}

// Reads outside the region are ignored (boundary reads).
func TestFromCellDepsIgnoresBoundaryReads(t *testing.T) {
	derived := FromCellDeps("derived-boundary", nil, func(i, j int, emit func(int, int)) {
		emit(i-1, j) // row -1 reads fall outside for the first row
		emit(-5, -5)
	})
	g := MatrixGeometry(Square(6), Square(2))
	gr := Build(derived, g)
	if len(gr.Roots()) != 3 { // whole first block row is free
		t.Fatalf("roots = %v, want the 3 first-row blocks", gr.Roots())
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	g := MatrixGeometry(Square(6), Square(3))
	if err := WriteDOT(&sb, Triangular{}, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "b0_0", "b0_1 -> b0_1", "}"} {
		if want == "b0_1 -> b0_1" {
			continue // no self edges expected; checked below
		}
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "b0_0 -> b0_0") {
		t.Fatal("self edge emitted")
	}
	// Triangular 2x2 grid: 3 blocks, diagonal roots feed (0,1).
	if !strings.Contains(out, "b0_0 -> b0_1") || !strings.Contains(out, "b1_1 -> b0_1") {
		t.Fatalf("expected diagonal->corner edges:\n%s", out)
	}
}
