// Package dag implements the DAG Data Driven Model of EasyHPS.
//
// A dynamic-programming problem is described by a DP matrix and a
// recurrence. The matrix is partitioned into rectangular blocks; the blocks
// form a directed acyclic graph whose edges follow the data dependencies of
// the recurrence. The same machinery is applied twice in the multilevel
// runtime: once at processor level (the whole matrix partitioned with
// process_partition_size) and once at thread level (a single processor-level
// block partitioned again with thread_partition_size).
//
// The model distinguishes two dependency levels, following the paper:
//
//   - the topological level (Precursors): a minimal set of direct
//     predecessor blocks sufficient to define a correct execution order;
//   - the data-communication level (DataDeps): the full set of blocks whose
//     cells the recurrence may read, used to decide which blocks must be
//     shipped to a slave before it can execute a sub-task.
//
// Every data dependency is reachable from the vertex through topological
// edges, so a block is only ever scheduled after all blocks it reads from
// are complete. This invariant is verified by tests for every library
// pattern.
package dag

import "fmt"

// Pos identifies a vertex of a block grid (or a cell, for 1x1 blocks) by
// row and column, both zero based.
type Pos struct {
	Row, Col int
}

func (p Pos) String() string { return fmt.Sprintf("(%d,%d)", p.Row, p.Col) }

// Size is a rectangular extent in rows and columns.
type Size struct {
	Rows, Cols int
}

func (s Size) String() string { return fmt.Sprintf("%dx%d", s.Rows, s.Cols) }

// Square returns an n-by-n Size.
func Square(n int) Size { return Size{Rows: n, Cols: n} }

// Cells returns the number of cells in the extent.
func (s Size) Cells() int { return s.Rows * s.Cols }

// Valid reports whether both dimensions are positive.
func (s Size) Valid() bool { return s.Rows > 0 && s.Cols > 0 }

// Rect is a half-open rectangular region of matrix cells:
// rows [Row0, Row0+Rows) and columns [Col0, Col0+Cols).
type Rect struct {
	Row0, Col0 int
	Rows, Cols int
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", r.Row0, r.Row0+r.Rows, r.Col0, r.Col0+r.Cols)
}

// Contains reports whether cell (i, j) lies inside the region.
func (r Rect) Contains(i, j int) bool {
	return i >= r.Row0 && i < r.Row0+r.Rows && j >= r.Col0 && j < r.Col0+r.Cols
}

// Cells returns the number of cells in the region.
func (r Rect) Cells() int { return r.Rows * r.Cols }

// Empty reports whether the region has no cells.
func (r Rect) Empty() bool { return r.Rows <= 0 || r.Cols <= 0 }

// Geometry describes one level of partitioning: a Region of the DP matrix
// divided into blocks of at most Block cells, forming a Grid of block
// positions. At processor level Region covers the whole matrix; at thread
// level Region is a single processor-level block.
type Geometry struct {
	// Region is the cell region being partitioned.
	Region Rect
	// Block is the partition size (partition_size in the paper). Edge
	// blocks are clipped and may be smaller.
	Block Size
	// Grid is the resulting block grid size (rect_size in the paper).
	Grid Size
}

// NewGeometry partitions region into blocks of size block.
func NewGeometry(region Rect, block Size) Geometry {
	if region.Empty() {
		panic("dag: empty region")
	}
	if !block.Valid() {
		panic("dag: invalid block size " + block.String())
	}
	return Geometry{
		Region: region,
		Block:  block,
		Grid: Size{
			Rows: ceilDiv(region.Rows, block.Rows),
			Cols: ceilDiv(region.Cols, block.Cols),
		},
	}
}

// MatrixGeometry partitions the full n-sized matrix: the processor-level
// geometry of a problem.
func MatrixGeometry(n Size, block Size) Geometry {
	return NewGeometry(Rect{Row0: 0, Col0: 0, Rows: n.Rows, Cols: n.Cols}, block)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Rect returns the (clipped) cell region of block p.
func (g Geometry) Rect(p Pos) Rect {
	r := Rect{
		Row0: g.Region.Row0 + p.Row*g.Block.Rows,
		Col0: g.Region.Col0 + p.Col*g.Block.Cols,
		Rows: g.Block.Rows,
		Cols: g.Block.Cols,
	}
	if over := r.Row0 + r.Rows - (g.Region.Row0 + g.Region.Rows); over > 0 {
		r.Rows -= over
	}
	if over := r.Col0 + r.Cols - (g.Region.Col0 + g.Region.Cols); over > 0 {
		r.Cols -= over
	}
	return r
}

// BlockOf returns the grid position of the block containing cell (i, j).
// The cell must lie inside the region.
func (g Geometry) BlockOf(i, j int) Pos {
	return Pos{
		Row: (i - g.Region.Row0) / g.Block.Rows,
		Col: (j - g.Region.Col0) / g.Block.Cols,
	}
}

// InGrid reports whether p is a valid grid position.
func (g Geometry) InGrid(p Pos) bool {
	return p.Row >= 0 && p.Row < g.Grid.Rows && p.Col >= 0 && p.Col < g.Grid.Cols
}

// ID returns the dense integer id of grid position p.
func (g Geometry) ID(p Pos) int32 { return int32(p.Row*g.Grid.Cols + p.Col) }

// PosOf is the inverse of ID.
func (g Geometry) PosOf(id int32) Pos {
	return Pos{Row: int(id) / g.Grid.Cols, Col: int(id) % g.Grid.Cols}
}
