package dag

import (
	"testing"
	"testing/quick"
)

func libraryPatterns() []Pattern {
	return []Pattern{Wavefront{}, RowColumn{}, Triangular{}, Dominance{}, RowOnly{}, Chain{}}
}

// Every library pattern, on a spread of geometries, must (a) be acyclic
// with all vertices reachable, (b) have every data dependency covered by
// the topological order, and (c) visit each existing cell exactly once in
// CellOrder.
func TestLibraryPatternInvariants(t *testing.T) {
	geoms := []Geometry{
		MatrixGeometry(Square(1), Square(1)),
		MatrixGeometry(Square(7), Square(1)),
		MatrixGeometry(Square(12), Square(3)),
		MatrixGeometry(Square(12), Square(5)),
		MatrixGeometry(Size{9, 17}, Size{4, 3}),
		NewGeometry(Rect{6, 6, 6, 6}, Square(2)), // thread-level style region
	}
	for _, pat := range libraryPatterns() {
		for _, g := range geoms {
			if err := ValidateAcyclic(pat, g); err != nil {
				t.Errorf("%s %v: %v", pat.Name(), g.Region, err)
			}
			if err := ValidateTopology(pat, g); err != nil {
				t.Errorf("%s %v: %v", pat.Name(), g.Region, err)
			}
			if err := ValidateCellOrder(pat, g); err != nil {
				t.Errorf("%s %v: %v", pat.Name(), g.Region, err)
			}
		}
	}
}

// Property test: random square geometries keep the invariants.
func TestLibraryPatternInvariantsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-check sweep")
	}
	for _, pat := range libraryPatterns() {
		pat := pat
		f := func(n, br, bc uint8) bool {
			g := MatrixGeometry(Square(int(n%24)+1), Size{int(br%6) + 1, int(bc%6) + 1})
			return ValidateAcyclic(pat, g) == nil &&
				ValidateTopology(pat, g) == nil &&
				ValidateCellOrder(pat, g) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", pat.Name(), err)
		}
	}
}

func TestWavefrontDegrees(t *testing.T) {
	g := MatrixGeometry(Square(12), Square(4)) // 3x3 grid
	gr := Build(Wavefront{}, g)
	if gr.N != 9 {
		t.Fatalf("N = %d, want 9", gr.N)
	}
	if got := gr.Vertex(g.ID(Pos{0, 0})).PreCnt; got != 0 {
		t.Errorf("corner PreCnt = %d, want 0", got)
	}
	if got := gr.Vertex(g.ID(Pos{1, 1})).PreCnt; got != 2 {
		t.Errorf("interior PreCnt = %d, want 2", got)
	}
	roots := gr.Roots()
	if len(roots) != 1 || roots[0] != g.ID(Pos{0, 0}) {
		t.Errorf("roots = %v, want [top-left]", roots)
	}
}

func TestTriangularExistence(t *testing.T) {
	g := MatrixGeometry(Square(12), Square(4)) // 3x3 grid over upper triangle
	gr := Build(Triangular{}, g)
	// Blocks with Row <= Col exist: 6 of 9.
	if gr.N != 6 {
		t.Fatalf("N = %d, want 6", gr.N)
	}
	tr := Triangular{}
	if tr.BlockExists(g, Pos{2, 0}) {
		t.Error("block strictly below diagonal should not exist")
	}
	if !tr.BlockExists(g, Pos{1, 1}) {
		t.Error("diagonal block should exist")
	}
	// All three diagonal blocks are roots (the base case of the recurrence).
	roots := gr.Roots()
	if len(roots) != 3 {
		t.Fatalf("roots = %v, want the 3 diagonal blocks", roots)
	}
	for _, id := range roots {
		p := g.PosOf(id)
		if p.Row != p.Col {
			t.Errorf("root %v is not on the diagonal", p)
		}
	}
}

func TestTriangularNonSquareBlocks(t *testing.T) {
	// Rectangular blocks straddle the diagonal irregularly; invariants
	// must still hold.
	g := MatrixGeometry(Square(20), Size{3, 5})
	if err := ValidateAcyclic(Triangular{}, g); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTopology(Triangular{}, g); err != nil {
		t.Fatal(err)
	}
}

func TestTriangularCellOrderRespectsDeps(t *testing.T) {
	// Within one block, (i+1, j), (i, j-1), (i+1, j-1) must come before
	// (i, j).
	r := Rect{2, 2, 5, 5}
	seen := make(map[[2]int]int)
	step := 0
	Triangular{}.CellOrder(r, func(i, j int) {
		for _, d := range [][2]int{{i + 1, j}, {i, j - 1}, {i + 1, j - 1}} {
			di, dj := d[0], d[1]
			if r.Contains(di, dj) && di <= dj {
				if _, ok := seen[[2]int{di, dj}]; !ok {
					t.Fatalf("cell (%d,%d) visited before its dependency (%d,%d)", i, j, di, dj)
				}
			}
		}
		seen[[2]int{i, j}] = step
		step++
	})
	if len(seen) == 0 {
		t.Fatal("no cells visited")
	}
}

func TestRowColumnDataDeps(t *testing.T) {
	g := MatrixGeometry(Square(20), Square(4)) // 5x5 grid
	var buf []Pos
	buf = RowColumn{}.DataDeps(g, Pos{2, 3}, buf)
	want := map[Pos]bool{
		{2, 0}: true, {2, 1}: true, {2, 2}: true, // row to the left
		{0, 3}: true, {1, 3}: true, // column above
		{1, 2}: true, // north-west diagonal
	}
	if len(buf) != len(want) {
		t.Fatalf("DataDeps = %v, want %d blocks", buf, len(want))
	}
	for _, p := range buf {
		if !want[p] {
			t.Errorf("unexpected data dep %v", p)
		}
	}
}

func TestTriangularDataDepsIncludeSWCorner(t *testing.T) {
	// Cell-level reads of (i+1, j-1) can land in block (r+1, c-1): the
	// data region must include it.
	g := MatrixGeometry(Square(20), Square(4))
	var buf []Pos
	buf = Triangular{}.DataDeps(g, Pos{1, 3}, buf)
	found := false
	for _, p := range buf {
		if p == (Pos{2, 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("DataDeps(1,3) = %v, missing south-west corner block (2,2)", buf)
	}
}

func TestRowOnlyDegrees(t *testing.T) {
	g := MatrixGeometry(Size{4, 8}, Size{1, 2}) // 4x4 grid
	gr := Build(RowOnly{}, g)
	// Whole first row is immediately computable.
	roots := gr.Roots()
	if len(roots) != 4 {
		t.Fatalf("roots = %d, want 4 (entire first block row)", len(roots))
	}
	// Block (2, 3) depends on all four blocks of row 1 up to col 3.
	if got := gr.Vertex(g.ID(Pos{2, 3})).PreCnt; got != 4 {
		t.Errorf("PreCnt(2,3) = %d, want 4", got)
	}
	if got := gr.Vertex(g.ID(Pos{2, 0})).PreCnt; got != 1 {
		t.Errorf("PreCnt(2,0) = %d, want 1", got)
	}
}

func TestChainIsAPipeline(t *testing.T) {
	g := MatrixGeometry(Size{1, 10}, Size{1, 2})
	gr := Build(Chain{}, g)
	if gr.N != 5 {
		t.Fatalf("N = %d, want 5", gr.N)
	}
	roots := gr.Roots()
	if len(roots) != 1 {
		t.Fatalf("chain must have exactly one root, got %v", roots)
	}
}

func TestDominanceDataDepsAreFullRectangle(t *testing.T) {
	g := MatrixGeometry(Square(12), Square(4))
	var buf []Pos
	buf = Dominance{}.DataDeps(g, Pos{2, 2}, buf)
	if len(buf) != 8 { // 3x3 rectangle minus self
		t.Fatalf("DataDeps = %v, want 8 blocks", buf)
	}
}

func TestLookupLibrary(t *testing.T) {
	for _, name := range []string{NameWavefront, NameRowColumn, NameTriangular, NameDominance, NameRowOnly, NameChain} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("no-such-pattern"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	names := LibraryNames()
	if len(names) < 6 {
		t.Errorf("library has %d patterns, want >= 6", len(names))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic(t, func() { Register(Wavefront{}) })
}

func TestCustomPatternDefaults(t *testing.T) {
	c := Custom{PatternName: "test-default"}
	g := MatrixGeometry(Square(6), Square(2))
	if !c.CellExists(3, 3) {
		t.Error("default CellExists should be true")
	}
	if !c.BlockExists(g, Pos{1, 1}) {
		t.Error("default BlockExists should be true for in-grid positions")
	}
	if c.BlockExists(g, Pos{5, 5}) {
		t.Error("BlockExists out of grid should be false")
	}
	if got := c.Precursors(g, Pos{1, 1}, nil); len(got) != 0 {
		t.Errorf("default Precursors = %v, want empty", got)
	}
	n := 0
	c.CellOrder(Rect{0, 0, 2, 3}, func(i, j int) { n++ })
	if n != 6 {
		t.Errorf("default CellOrder visited %d cells, want 6", n)
	}
	if err := ValidateAcyclic(c, g); err != nil {
		t.Error(err)
	}
}

func TestCustomPatternBadTopologyDetected(t *testing.T) {
	// A pattern whose data deps are NOT covered by precursors must be
	// rejected by ValidateTopology.
	bad := Custom{
		PatternName: "test-bad",
		PrecursorsFunc: func(g Geometry, p Pos, buf []Pos) []Pos {
			if p.Col > 0 {
				buf = append(buf, Pos{p.Row, p.Col - 1})
			}
			return buf
		},
		DataDepsFunc: func(g Geometry, p Pos, buf []Pos) []Pos {
			if p.Row > 0 {
				buf = append(buf, Pos{p.Row - 1, p.Col}) // not an ancestor
			}
			return buf
		},
	}
	g := MatrixGeometry(Square(4), Square(2))
	if err := ValidateTopology(bad, g); err == nil {
		t.Error("ValidateTopology accepted a pattern with uncovered data deps")
	}
}

func TestBuildPanicsOnBogusPrecursor(t *testing.T) {
	bogus := Custom{
		PatternName: "test-bogus",
		PrecursorsFunc: func(g Geometry, p Pos, buf []Pos) []Pos {
			return append(buf, Pos{-5, -5})
		},
	}
	mustPanic(t, func() { Build(bogus, MatrixGeometry(Square(4), Square(2))) })
}

// DataDeps must not contain duplicates: the runtime refcounts blocks by
// the data-dependency lists when memory reclamation is enabled.
func TestLibraryPatternDataDepsUnique(t *testing.T) {
	geoms := []Geometry{
		MatrixGeometry(Square(18), Square(4)),
		MatrixGeometry(Square(18), Size{3, 5}),
	}
	pats := append(libraryPatterns(), PrevRow{}, Banded{Width: 5})
	for _, pat := range pats {
		if _, ok := pat.(PrevRow); ok {
			geoms = []Geometry{MatrixGeometry(Square(18), Size{1, 4})}
		}
		for _, g := range geoms {
			var buf []Pos
			for r := 0; r < g.Grid.Rows; r++ {
				for c := 0; c < g.Grid.Cols; c++ {
					p := Pos{r, c}
					if !pat.BlockExists(g, p) {
						continue
					}
					buf = pat.DataDeps(g, p, buf[:0])
					seen := make(map[Pos]bool, len(buf))
					for _, d := range buf {
						if seen[d] {
							t.Fatalf("%s: duplicate data dep %v of %v", pat.Name(), d, p)
						}
						seen[d] = true
					}
				}
			}
		}
	}
}

func TestPrevRowInvariants(t *testing.T) {
	g := MatrixGeometry(Size{10, 20}, Size{1, 4})
	if err := ValidateAcyclic(PrevRow{}, g); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTopology(PrevRow{}, g); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCellOrder(PrevRow{}, g); err != nil {
		t.Fatal(err)
	}
	// Multi-row, multi-column blocks must be rejected loudly.
	mustPanic(t, func() {
		PrevRow{}.Precursors(MatrixGeometry(Size{10, 20}, Size{2, 4}), Pos{1, 1}, nil)
	})
	// A single block column is fine even with multi-row blocks.
	g2 := MatrixGeometry(Size{10, 4}, Size{2, 4})
	if err := ValidateTopology(PrevRow{}, g2); err != nil {
		t.Fatal(err)
	}
}

func TestBandedInvariants(t *testing.T) {
	for _, w := range []int{0, 2, 7, 30} {
		pat := Banded{Width: w}
		for _, g := range []Geometry{
			MatrixGeometry(Square(20), Square(4)),
			MatrixGeometry(Size{15, 25}, Size{4, 3}),
		} {
			if err := ValidateAcyclic(pat, g); err != nil {
				t.Errorf("w=%d: %v", w, err)
			}
			if err := ValidateTopology(pat, g); err != nil {
				t.Errorf("w=%d: %v", w, err)
			}
			if err := ValidateCellOrder(pat, g); err != nil {
				t.Errorf("w=%d: %v", w, err)
			}
		}
	}
}

func TestBandedBlockExistence(t *testing.T) {
	pat := Banded{Width: 2}
	g := MatrixGeometry(Square(20), Square(5))
	if pat.BlockExists(g, Pos{0, 3}) {
		t.Error("far off-diagonal block should not exist")
	}
	if !pat.BlockExists(g, Pos{1, 1}) || !pat.BlockExists(g, Pos{1, 0}) {
		t.Error("near-diagonal blocks should exist")
	}
}
