package dag

import "fmt"

// FromCellDeps builds a Custom pattern from a purely cell-level
// description of a recurrence: which cells exist and which cells each cell
// reads. Block-level dependencies are derived by scanning the cells of a
// block and mapping their reads to blocks — the programmer never reasons
// about blocks at all, which is the friendliest form of the paper's
// user-defined-pattern API.
//
// cellDeps must call emit(di, dj) for every cell (di, dj) that cell (i, j)
// reads; reads outside the computed region are ignored automatically. The
// intra-block evaluation order is row-major; DeriveValidate (or
// ValidateCellOrder plus a small test) should be used to confirm the
// recurrence is row-major-compatible (cells must only read cells at
// smaller (i) or equal i and smaller j — true for most left/up-looking
// recurrences; bottom-up recurrences like Nussinov need an explicit
// CellOrderFunc instead).
func FromCellDeps(name string, exists func(i, j int) bool, cellDeps func(i, j int, emit func(di, dj int))) Custom {
	derived := func(g Geometry, p Pos, buf []Pos) []Pos {
		r := g.Rect(p)
		seen := map[Pos]bool{p: true}
		for i := r.Row0; i < r.Row0+r.Rows; i++ {
			for j := r.Col0; j < r.Col0+r.Cols; j++ {
				if exists != nil && !exists(i, j) {
					continue
				}
				cellDeps(i, j, func(di, dj int) {
					if !g.Region.Contains(di, dj) {
						return
					}
					if exists != nil && !exists(di, dj) {
						return
					}
					q := g.BlockOf(di, dj)
					if !seen[q] {
						seen[q] = true
						buf = append(buf, q)
					}
				})
			}
		}
		return buf
	}
	return Custom{
		PatternName:    name,
		CellExistsFunc: exists,
		// The derived set is exact, so topological precursors and the
		// data region coincide.
		PrecursorsFunc: derived,
		DataDepsFunc:   derived,
	}
}

// DeriveValidate checks a derived (or any) pattern on a concrete geometry:
// model invariants plus row-major compatibility of the cell reads (every
// read must target an earlier cell in row-major order, or a cell outside
// the region).
func DeriveValidate(pat Pattern, g Geometry, cellDeps func(i, j int, emit func(di, dj int))) error {
	if err := ValidateAcyclic(pat, g); err != nil {
		return err
	}
	if err := ValidateTopology(pat, g); err != nil {
		return err
	}
	if err := ValidateCellOrder(pat, g); err != nil {
		return err
	}
	if cellDeps == nil {
		return nil
	}
	reg := g.Region
	var bad error
	for i := reg.Row0; i < reg.Row0+reg.Rows && bad == nil; i++ {
		for j := reg.Col0; j < reg.Col0+reg.Cols && bad == nil; j++ {
			if !pat.CellExists(i, j) {
				continue
			}
			cellDeps(i, j, func(di, dj int) {
				if bad != nil || !reg.Contains(di, dj) || !pat.CellExists(di, dj) {
					return
				}
				if di > i || (di == i && dj >= j) {
					bad = fmt.Errorf("dag: cell (%d,%d) reads (%d,%d), which row-major order has not computed yet; provide an explicit CellOrderFunc", i, j, di, dj)
				}
			})
		}
	}
	return bad
}
