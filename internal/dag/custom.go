package dag

// Custom is a user-defined DAG Pattern Model, the escape hatch the paper's
// user API provides for DP problems whose dependency structure is not
// covered by the library. Fill in the function fields; nil fields fall
// back to sensible defaults (all cells exist, data deps equal precursors,
// row-major cell order).
//
// A Custom pattern must uphold the model invariant that every data
// dependency of a block is reachable from the block through precursor
// edges; ValidateTopology from this package checks it on a concrete
// geometry and should be run in the user's tests.
type Custom struct {
	// PatternName identifies the pattern; required, must be unique if
	// the pattern is registered in the library.
	PatternName string
	// PatternClass is the optional tD/eD classification label.
	PatternClass Class
	// CellExistsFunc reports whether cell (i, j) is computed.
	CellExistsFunc func(i, j int) bool
	// PrecursorsFunc appends the direct topological precursors of block
	// p in geometry g.
	PrecursorsFunc func(g Geometry, p Pos, buf []Pos) []Pos
	// DataDepsFunc appends the data-dependency blocks of p; when nil the
	// precursor set is used.
	DataDepsFunc func(g Geometry, p Pos, buf []Pos) []Pos
	// CellOrderFunc visits the cells of r in dependency order; when nil
	// existing cells are visited row-major.
	CellOrderFunc func(r Rect, visit func(i, j int))
}

var _ Pattern = Custom{}

func (c Custom) Name() string { return c.PatternName }

func (c Custom) Class() Class {
	if c.PatternClass == "" {
		return Class("custom")
	}
	return c.PatternClass
}

func (c Custom) CellExists(i, j int) bool {
	if c.CellExistsFunc == nil {
		return true
	}
	return c.CellExistsFunc(i, j)
}

func (c Custom) BlockExists(g Geometry, p Pos) bool {
	if !g.InGrid(p) {
		return false
	}
	if c.CellExistsFunc == nil {
		return true
	}
	r := g.Rect(p)
	for i := r.Row0; i < r.Row0+r.Rows; i++ {
		for j := r.Col0; j < r.Col0+r.Cols; j++ {
			if c.CellExistsFunc(i, j) {
				return true
			}
		}
	}
	return false
}

func (c Custom) Precursors(g Geometry, p Pos, buf []Pos) []Pos {
	if c.PrecursorsFunc == nil {
		return buf
	}
	return c.PrecursorsFunc(g, p, buf)
}

func (c Custom) DataDeps(g Geometry, p Pos, buf []Pos) []Pos {
	if c.DataDepsFunc != nil {
		return c.DataDepsFunc(g, p, buf)
	}
	return c.Precursors(g, p, buf)
}

func (c Custom) CellOrder(r Rect, visit func(i, j int)) {
	if c.CellOrderFunc != nil {
		c.CellOrderFunc(r, visit)
		return
	}
	for i := r.Row0; i < r.Row0+r.Rows; i++ {
		for j := r.Col0; j < r.Col0+r.Cols; j++ {
			if c.CellExists(i, j) {
				visit(i, j)
			}
		}
	}
}
