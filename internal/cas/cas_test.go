package cas

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

func TestKeyDerivationDeterministic(t *testing.T) {
	if JobKey("abc") != JobKey("abc") {
		t.Fatal("JobKey not deterministic")
	}
	if JobKey("abc") == JobKey("abd") {
		t.Fatal("JobKey ignores the digest")
	}
	p1, p2 := PayloadKey([]byte("one")), PayloadKey([]byte("two"))
	if p1 == p2 {
		t.Fatal("PayloadKey collision on distinct payloads")
	}
	k := BlockKey("spec", 0, 0, 4, 4, []Key{p1, p2})
	if k != BlockKey("spec", 0, 0, 4, 4, []Key{p1, p2}) {
		t.Fatal("BlockKey not deterministic")
	}
	if k == BlockKey("spec", 0, 0, 4, 4, []Key{p2, p1}) {
		t.Fatal("BlockKey ignores predecessor order")
	}
	if k == BlockKey("spec", 0, 4, 4, 4, []Key{p1, p2}) {
		t.Fatal("BlockKey ignores the rectangle")
	}
	if k == BlockKey("other", 0, 0, 4, 4, []Key{p1, p2}) {
		t.Fatal("BlockKey ignores the spec digest")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := PayloadKey([]byte("payload"))
	got, ok := parseKey(k.String())
	if !ok || got != k {
		t.Fatalf("parseKey(%q) = %v, %v", k.String(), got, ok)
	}
	if _, ok := parseKey("zz"); ok {
		t.Fatal("parseKey accepted a short string")
	}
	if _, ok := parseKey(string(make([]byte, 64))); ok {
		t.Fatal("parseKey accepted non-hex input")
	}
}

func TestBlockRoundTripAndLayerCounters(t *testing.T) {
	s, err := NewStore(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := PayloadKey([]byte("x"))
	if _, ok := s.GetBlock(k, LayerMaster); ok {
		t.Fatal("hit on empty store")
	}
	s.PutBlock(k, []byte("x"))
	got, ok := s.GetBlock(k, LayerServer)
	if !ok || string(got) != "x" {
		t.Fatalf("GetBlock = %q, %v", got, ok)
	}
	st := s.Snapshot()
	if st.Hits[LayerServer] != 1 || st.Misses[LayerMaster] != 1 {
		t.Fatalf("layer counters wrong: %+v", st)
	}
	if st.Blocks != 1 || st.Bytes != 1 {
		t.Fatalf("snapshot wrong: %+v", st)
	}
}

// The byte budget is a hard invariant: after any sequence of inserts the
// resident block bytes never exceed MaxBytes, oversized payloads are
// refused outright, and recency protects recently touched entries.
func TestBlockLRUBudgetProperty(t *testing.T) {
	const budget = 1 << 10
	s, err := NewStore(Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var keys []Key
	for i := 0; i < 500; i++ {
		n := rng.Intn(300) + 1
		payload := make([]byte, n)
		rng.Read(payload)
		k := PayloadKey(payload)
		s.PutBlock(k, payload)
		keys = append(keys, k)
		// Touch a random older key to exercise recency moves.
		if len(keys) > 2 {
			s.GetBlock(keys[rng.Intn(len(keys))], LayerMaster)
		}
		if st := s.Snapshot(); st.Bytes > budget {
			t.Fatalf("insert %d: resident bytes %d exceed budget %d", i, st.Bytes, budget)
		}
	}
	if st := s.Snapshot(); st.BlockEvictions == 0 {
		t.Fatal("500 inserts over a 1KiB budget evicted nothing")
	}

	// An oversized payload is not stored at all.
	big := make([]byte, budget+1)
	bk := PayloadKey(big)
	s.PutBlock(bk, big)
	if _, ok := s.GetBlock(bk, LayerMaster); ok {
		t.Fatal("payload larger than the budget was stored")
	}

	// The most recently used entry survives an eviction wave.
	fresh := []byte("fresh")
	fk := PayloadKey(fresh)
	s.PutBlock(fk, fresh)
	s.GetBlock(fk, LayerMaster)
	for i := 0; i < 50; i++ {
		p := make([]byte, 100)
		rng.Read(p)
		s.PutBlock(PayloadKey(p), p)
		s.GetBlock(fk, LayerMaster) // keep it hot
	}
	if _, ok := s.GetBlock(fk, LayerMaster); !ok {
		t.Fatal("hot entry was evicted ahead of cold ones")
	}
}

func TestJobTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := NewStore(Options{JobTTL: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	k := JobKey("digest")
	s.PutJob(k, []byte("result"))
	if _, ok := s.GetJob(k, LayerServer); !ok {
		t.Fatal("fresh job entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := s.GetJob(k, LayerServer); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.GetJob(k, LayerServer); ok {
		t.Fatal("entry survived its TTL")
	}
	if st := s.Snapshot(); st.JobEvictions != 1 || st.Jobs != 0 {
		t.Fatalf("TTL sweep not reflected: %+v", st)
	}
	// Re-put refreshes the pin.
	s.PutJob(k, []byte("result2"))
	now = now.Add(59 * time.Second)
	if got, ok := s.GetJob(k, LayerServer); !ok || string(got) != "result2" {
		t.Fatalf("re-put entry = %q, %v", got, ok)
	}
}

func TestDiskPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bk := PayloadKey([]byte("block"))
	jk := JobKey("digest")
	s.PutBlock(bk, []byte("block"))
	s.PutJob(jk, []byte("job"))

	// A second store over the same directory sees both entries.
	s2, err := NewStore(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetBlock(bk, LayerMaster); !ok || string(got) != "block" {
		t.Fatalf("reloaded block = %q, %v", got, ok)
	}
	if got, ok := s2.GetJob(jk, LayerServer); !ok || string(got) != "job" {
		t.Fatalf("reloaded job = %q, %v", got, ok)
	}

	// Junk files are ignored, not fatal.
	if err := os.WriteFile(dir+"/not-a-key.blk", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(Options{Dir: dir}); err != nil {
		t.Fatalf("junk file broke reload: %v", err)
	}
}

// Reloading under a budget keeps the newest blocks: files are inserted
// oldest-first so the LRU evicts the stalest on overflow, and evicted
// entries disappear from disk too.
func TestDiskReloadRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("payload-%02d", i))
		s.PutBlock(PayloadKey(p), p)
	}
	s2, err := NewStore(Options{Dir: dir, MaxBytes: 30})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Snapshot(); st.Bytes > 30 {
		t.Fatalf("reload exceeded budget: %+v", st)
	}
}

func TestPeerSet(t *testing.T) {
	s, err := NewStore(Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewPeerSet()
	k := PayloadKey([]byte("b"))
	if p.Knows(k) {
		t.Fatal("empty peer set knows a key")
	}
	p.Note(k)
	if !p.Knows(k) {
		t.Fatal("noted key unknown")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Reset()
	if p.Knows(k) {
		t.Fatal("key survived Reset")
	}
	st := s.Snapshot()
	if st.Hits[LayerWire] != 1 || st.Misses[LayerWire] != 2 {
		t.Fatalf("wire counters wrong: hits=%v misses=%v", st.Hits, st.Misses)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := NewStore(Options{MaxBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(g)))
			p := s.NewPeerSet()
			for i := 0; i < 200; i++ {
				payload := make([]byte, rng.Intn(64)+1)
				rng.Read(payload)
				k := PayloadKey(payload)
				s.PutBlock(k, payload)
				s.GetBlock(k, LayerMaster)
				if !p.Knows(k) {
					p.Note(k)
				}
				s.PutJob(JobKey(fmt.Sprint(i%7)), payload)
				s.GetJob(JobKey(fmt.Sprint(i%5)), LayerServer)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := s.Snapshot(); st.Bytes < 0 {
		t.Fatalf("negative resident bytes: %+v", st)
	}
}
