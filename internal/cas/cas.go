package cas

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Store.
type Options struct {
	// Dir, when non-empty, persists entries as files under this directory
	// (one file per key, "<hex>.blk" / "<hex>.job") and reloads them on
	// open. Empty keeps the store purely in memory.
	Dir string
	// MaxBytes budgets the block entries' payload bytes; the least
	// recently used blocks are evicted once the budget is exceeded, and a
	// single payload larger than the budget is not stored at all, so the
	// store never holds more than MaxBytes of block data. Zero or
	// negative means unlimited. Whole-job entries are pinned until their
	// TTL and do not count against this budget.
	MaxBytes int64
	// JobTTL bounds how long a whole-job entry stays pinned (default 1h).
	JobTTL time.Duration
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.JobTTL <= 0 {
		o.JobTTL = time.Hour
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// layerCount is one counter fanned out by consumer layer.
type layerCount struct {
	server atomic.Int64
	master atomic.Int64
	wire   atomic.Int64
}

func (c *layerCount) add(l Layer) {
	switch l {
	case LayerServer:
		c.server.Add(1)
	case LayerMaster:
		c.master.Add(1)
	default:
		c.wire.Add(1)
	}
}

func (c *layerCount) snapshot() map[Layer]int64 {
	return map[Layer]int64{
		LayerServer: c.server.Load(),
		LayerMaster: c.master.Load(),
		LayerWire:   c.wire.Load(),
	}
}

type blockEntry struct {
	key     Key
	payload []byte
}

type jobEntry struct {
	payload []byte
	expires time.Time
}

// Store is the content-addressed result store. Block entries live in a
// byte-budgeted LRU; whole-job entries are pinned until their TTL. All
// methods are safe for concurrent use; payloads are treated as immutable
// by both sides (callers must not mutate a slice after Put or the slice
// returned by Get).
type Store struct {
	opts Options

	mu         sync.Mutex
	blocks     map[Key]*list.Element // of *blockEntry
	lru        *list.List            // front = most recently used
	blockBytes int64
	jobs       map[Key]jobEntry
	jobBytes   int64

	hits           layerCount
	misses         layerCount
	blockEvictions atomic.Int64
	jobEvictions   atomic.Int64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits and Misses count lookups per consumer layer. A wire "hit" is a
	// block that did not have to be reshipped; a wire "miss" is one that
	// was.
	Hits   map[Layer]int64
	Misses map[Layer]int64
	// BlockEvictions counts blocks dropped by the LRU byte budget;
	// JobEvictions counts whole-job entries expired by TTL.
	BlockEvictions int64
	JobEvictions   int64
	// Bytes is the resident payload size (blocks + jobs); Blocks and Jobs
	// count resident entries.
	Bytes  int64
	Blocks int
	Jobs   int
}

// NewStore opens a store; when opts.Dir is set, existing entries are
// reloaded (oldest first, so the byte budget keeps the newest blocks) and
// already-expired job entries are removed.
func NewStore(opts Options) (*Store, error) {
	s := &Store{
		opts:   opts.withDefaults(),
		blocks: make(map[Key]*list.Element),
		lru:    list.New(),
		jobs:   make(map[Key]jobEntry),
	}
	if s.opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: creating cache dir: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load reads the persisted entries back in. Only called from NewStore,
// before the store is shared, so no locking is needed.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("cas: reading cache dir: %w", err)
	}
	type onDisk struct {
		key  Key
		path string
		job  bool
		mod  time.Time
	}
	var files []onDisk
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var job bool
		switch {
		case strings.HasSuffix(name, ".blk"):
		case strings.HasSuffix(name, ".job"):
			job = true
		default:
			continue
		}
		k, ok := parseKey(strings.TrimSuffix(strings.TrimSuffix(name, ".blk"), ".job"))
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, onDisk{key: k, path: filepath.Join(s.opts.Dir, name), job: job, mod: info.ModTime()})
	}
	// Oldest first: inserting in age order makes the LRU evict the oldest
	// blocks when the reloaded set exceeds the byte budget.
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	now := s.opts.Clock()
	for _, f := range files {
		payload, err := os.ReadFile(f.path)
		if err != nil {
			continue
		}
		if f.job {
			expires := f.mod.Add(s.opts.JobTTL)
			if !now.Before(expires) {
				_ = os.Remove(f.path)
				continue
			}
			s.jobs[f.key] = jobEntry{payload: payload, expires: expires}
			s.jobBytes += int64(len(payload))
			continue
		}
		for _, path := range s.putBlockLocked(f.key, payload) {
			_ = os.Remove(path)
		}
	}
	return nil
}

// PutBlock inserts one encoded block payload, refreshing recency if the
// key is already resident. Payloads larger than the byte budget are
// dropped (storing them would violate the never-exceed guarantee).
func (s *Store) PutBlock(k Key, payload []byte) {
	s.mu.Lock()
	evicted := s.putBlockLocked(k, payload)
	s.mu.Unlock()
	// Disk I/O stays outside the mutex: persistence is best-effort and a
	// racing insert of the same key writes identical bytes anyway.
	if s.opts.Dir != "" {
		for _, path := range evicted {
			_ = os.Remove(path)
		}
		_ = os.WriteFile(s.blockPath(k), payload, 0o644)
	}
}

// putBlockLocked does the in-memory insert and eviction and returns the
// file paths of evicted entries for the caller to remove after unlock.
func (s *Store) putBlockLocked(k Key, payload []byte) (evictedPaths []string) {
	if el, ok := s.blocks[k]; ok {
		s.lru.MoveToFront(el)
		return nil
	}
	size := int64(len(payload))
	if s.opts.MaxBytes > 0 && size > s.opts.MaxBytes {
		return nil
	}
	el := s.lru.PushFront(&blockEntry{key: k, payload: payload})
	s.blocks[k] = el
	s.blockBytes += size
	for s.opts.MaxBytes > 0 && s.blockBytes > s.opts.MaxBytes {
		back := s.lru.Back()
		if back == nil || back == el {
			break
		}
		be := back.Value.(*blockEntry)
		s.lru.Remove(back)
		delete(s.blocks, be.key)
		s.blockBytes -= int64(len(be.payload))
		s.blockEvictions.Add(1)
		if s.opts.Dir != "" {
			evictedPaths = append(evictedPaths, s.blockPath(be.key))
		}
	}
	return evictedPaths
}

// GetBlock looks a block up, counting a hit or miss for the given layer
// and refreshing recency on hit. The returned payload must not be
// mutated.
func (s *Store) GetBlock(k Key, layer Layer) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.blocks[k]
	var payload []byte
	if ok {
		s.lru.MoveToFront(el)
		payload = el.Value.(*blockEntry).payload
	}
	s.mu.Unlock()
	if !ok {
		s.misses.add(layer)
		return nil, false
	}
	s.hits.add(layer)
	return payload, true
}

// PutJob inserts a whole-job entry, pinned until the store's TTL.
func (s *Store) PutJob(k Key, payload []byte) {
	now := s.opts.Clock()
	s.mu.Lock()
	expiredPaths := s.sweepJobsLocked(now)
	if old, ok := s.jobs[k]; ok {
		s.jobBytes -= int64(len(old.payload))
	}
	s.jobs[k] = jobEntry{payload: payload, expires: now.Add(s.opts.JobTTL)}
	s.jobBytes += int64(len(payload))
	s.mu.Unlock()
	if s.opts.Dir != "" {
		for _, path := range expiredPaths {
			_ = os.Remove(path)
		}
		_ = os.WriteFile(s.jobPath(k), payload, 0o644)
	}
}

// GetJob looks a whole-job entry up, expiring it first if its TTL has
// passed.
func (s *Store) GetJob(k Key, layer Layer) ([]byte, bool) {
	now := s.opts.Clock()
	s.mu.Lock()
	expiredPaths := s.sweepJobsLocked(now)
	e, ok := s.jobs[k]
	s.mu.Unlock()
	if s.opts.Dir != "" {
		for _, path := range expiredPaths {
			_ = os.Remove(path)
		}
	}
	if !ok {
		s.misses.add(layer)
		return nil, false
	}
	s.hits.add(layer)
	return e.payload, true
}

// sweepJobsLocked drops expired job entries and returns their file paths.
func (s *Store) sweepJobsLocked(now time.Time) (expiredPaths []string) {
	for k, e := range s.jobs {
		if now.Before(e.expires) {
			continue
		}
		delete(s.jobs, k)
		s.jobBytes -= int64(len(e.payload))
		s.jobEvictions.Add(1)
		if s.opts.Dir != "" {
			expiredPaths = append(expiredPaths, s.jobPath(k))
		}
	}
	return expiredPaths
}

// Snapshot materializes the counters for /metrics.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		Bytes:  s.blockBytes + s.jobBytes,
		Blocks: len(s.blocks),
		Jobs:   len(s.jobs),
	}
	s.mu.Unlock()
	st.Hits = s.hits.snapshot()
	st.Misses = s.misses.snapshot()
	st.BlockEvictions = s.blockEvictions.Load()
	st.JobEvictions = s.jobEvictions.Load()
	return st
}

func (s *Store) blockPath(k Key) string {
	return filepath.Join(s.opts.Dir, k.String()+".blk")
}

func (s *Store) jobPath(k Key) string {
	return filepath.Join(s.opts.Dir, k.String()+".job")
}

// PeerSet tracks which content keys one peer (a slave or fleet member)
// currently holds — the generalization of delta shipping's per-slave
// known-set to content addressing. Lookups count against the store's
// wire-layer hit/miss series: a hit is a block that did not have to be
// reshipped. The zero value is not usable; obtain one from NewPeerSet.
type PeerSet struct {
	store *Store
	mu    sync.Mutex
	keys  map[Key]struct{}
}

// NewPeerSet issues an empty known-set bound to this store's wire-layer
// counters.
func (s *Store) NewPeerSet() *PeerSet {
	return &PeerSet{store: s, keys: make(map[Key]struct{})}
}

// Knows reports whether the peer holds k, counting a wire hit or miss.
func (p *PeerSet) Knows(k Key) bool {
	p.mu.Lock()
	_, ok := p.keys[k]
	p.mu.Unlock()
	if ok {
		p.store.hits.add(LayerWire)
	} else {
		p.store.misses.add(LayerWire)
	}
	return ok
}

// Note records that the peer now holds k.
func (p *PeerSet) Note(k Key) {
	p.mu.Lock()
	p.keys[k] = struct{}{}
	p.mu.Unlock()
}

// Reset forgets everything — called when the peer provably dropped its
// blocks (a fleet member whose attached-job set emptied, a reconnect).
func (p *PeerSet) Reset() {
	p.mu.Lock()
	p.keys = make(map[Key]struct{})
	p.mu.Unlock()
}

// Len reports the tracked key count (tests and debugging).
func (p *PeerSet) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.keys)
}
