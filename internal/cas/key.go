// Package cas is the content-addressed result store: completed DP blocks
// and whole-job results keyed by sha256 digests, shared across jobs and
// across the three layers that can exploit redundancy — the job service
// (whole-job memoization), the masters (per-block memoization) and the
// wire (content-keyed known-sets, so a worker already holding a block is
// never reshipped it).
//
// Keys chain through content: a block's key is derived from the problem
// spec digest, the block's cell rectangle and the content keys of its
// predecessor outputs, so two jobs that overlap without being identical
// still share the prefix of the DAG whose inputs agree. See docs/CACHE.md
// for the derivation, the eviction policy and the metrics.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Key is a sha256 content digest — the only key type the store accepts.
type Key [32]byte

// String renders the key as lowercase hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// parseKey is the inverse of String; ok is false for anything that is not
// exactly 64 hex digits.
func parseKey(s string) (Key, bool) {
	var k Key
	if len(s) != 2*len(k) {
		return k, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

// Layer labels which consumer hit or missed the store, for the per-layer
// metrics series.
type Layer string

const (
	// LayerServer is whole-job memoization in the job service.
	LayerServer Layer = "server"
	// LayerMaster is per-block memoization in the dispatching masters.
	LayerMaster Layer = "master"
	// LayerWire is the content-keyed known-set consulted before shipping
	// a data-region block to a worker.
	LayerWire Layer = "wire"
)

// JobKey derives the whole-job cache key from a problem-spec content
// digest (the canonical fingerprint of kernel plus inputs, scheduling
// knobs excluded).
func JobKey(specDigest string) Key {
	return sha256.Sum256([]byte("easyhps-cas:job:1:" + specDigest))
}

// BlockKey derives the per-vertex cache key: spec digest, the block's
// cell rectangle, and the content keys of its predecessor outputs in the
// graph's dependency order. Chaining through predecessor content (rather
// than vertex ids) makes the key self-validating — any divergence in any
// transitive input changes every downstream key.
func BlockKey(specDigest string, row0, col0, rows, cols int, preds []Key) Key {
	h := sha256.New()
	fmt.Fprintf(h, "easyhps-cas:block:1:%s:%d:%d:%d:%d:", specDigest, row0, col0, rows, cols)
	for _, p := range preds {
		h.Write(p[:])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// PayloadKey is the content key of one encoded block payload — the hash
// both master and worker can compute independently, which is what lets
// the wire layer's known-sets agree without extra round trips.
func PayloadKey(payload []byte) Key {
	return sha256.Sum256(payload)
}
