package easyhps

import (
	"strings"
	"testing"
	"time"
)

// The facade must be usable exactly as the README shows.
func TestFacadeQuickstart(t *testing.T) {
	a := RandomDNA(96, 1)
	b := MutateSeq(a, "ACGT", 0.2, 2)
	s := NewSWGG(a, b)
	res, err := Run(s.Problem(), Config{
		Slaves:          2,
		Threads:         3,
		ProcPartition:   Square(24),
		ThreadPartition: Square(6),
		RunTimeout:      2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	score, _, _ := BestLocal(res.Matrix())
	wantScore, _, _ := BestLocal(s.Sequential())
	if score != wantScore {
		t.Fatalf("facade run score %d != sequential %d", score, wantScore)
	}
}

func TestFacadePatternLibrary(t *testing.T) {
	for _, name := range []string{"wavefront", "rowcolumn", "triangular", "dominance", "rowonly", "chain"} {
		if _, ok := LookupPattern(name); !ok {
			t.Errorf("library pattern %q missing from facade", name)
		}
	}
	g := MatrixGeometry(Square(12), Square(3))
	if err := ValidatePattern(PatternWavefront, g); err != nil {
		t.Error(err)
	}
	if err := ValidatePattern(PatternTriangular, g); err != nil {
		t.Error(err)
	}
}

func TestFacadeCustomPattern(t *testing.T) {
	// A pattern violating the topology invariant must be rejected.
	bad := CustomPattern{
		PatternName: "facade-bad",
		DataDepsFunc: func(g Geometry, p Pos, buf []Pos) []Pos {
			if p.Row > 0 {
				buf = append(buf, Pos{Row: p.Row - 1, Col: p.Col})
			}
			return buf
		},
	}
	if err := ValidatePattern(bad, MatrixGeometry(Square(4), Square(2))); err == nil {
		t.Error("invalid custom pattern accepted")
	}
}

func TestFacadeTraceAndPolicy(t *testing.T) {
	e := NewEditDistance(RandomDNA(48, 3), RandomDNA(48, 4))
	rec := NewTrace()
	res, err := Run(e.Problem(), Config{
		Slaves:          2,
		Threads:         2,
		ProcPartition:   Square(12),
		ThreadPartition: Square(4),
		Policy:          PolicyBlockCyclic,
		Trace:           rec,
		RunTimeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 16 {
		t.Fatalf("tasks = %d, want 16", res.Stats.Tasks)
	}
	if s := rec.Summarize(); s.Tasks == 0 {
		t.Fatal("trace recorded nothing")
	}
}

func TestFacadeNussinovStructure(t *testing.T) {
	nu := NewNussinov(RandomRNA(64, 5))
	res, err := Run(nu.Problem(), Config{
		Slaves: 2, Threads: 2,
		ProcPartition: Square(16), ThreadPartition: Square(4),
		RunTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix()
	st := nu.Structure(m)
	if PairCount(st) != int(m[0][63]) {
		t.Fatalf("structure pairs %d != matrix %d", PairCount(st), m[0][63])
	}
}

func TestFacadeAffinityAndDelta(t *testing.T) {
	a := RandomDNA(48, 6)
	b := MutateSeq(a, "ACGT", 0.2, 7)
	s := NewSWGG(a, b)
	res, err := Run(s.Problem(), Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   Square(12),
		ThreadPartition: Square(4),
		Policy:          PolicyAffinity,
		RunTimeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksSkipped == 0 {
		t.Fatalf("affinity policy did not engage delta shipping: %+v", res.Stats)
	}
	wantScore, _, _ := BestLocal(s.Sequential())
	gotScore, _, _ := BestLocal(res.Matrix())
	if gotScore != wantScore {
		t.Fatalf("score %d != %d", gotScore, wantScore)
	}
}

func TestFacadeGeometryHelpers(t *testing.T) {
	g := MatrixGeometry(Square(10), Square(4))
	if g.Grid != (Size{Rows: 3, Cols: 3}) {
		t.Fatalf("grid = %v", g.Grid)
	}
	g2 := NewGeometry(Rect{Row0: 2, Col0: 2, Rows: 6, Cols: 6}, Square(3))
	if g2.Grid != (Size{Rows: 2, Cols: 2}) {
		t.Fatalf("region grid = %v", g2.Grid)
	}
}

func TestFacadeGantt(t *testing.T) {
	rec := NewTrace()
	e := NewEditDistance(RandomDNA(24, 8), RandomDNA(24, 9))
	if _, err := Run(e.Problem(), Config{
		Slaves: 2, Threads: 1,
		ProcPartition: Square(8), ThreadPartition: Square(4),
		Trace: rec, RunTimeout: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rec.Gantt(&sb, 40)
	if !strings.Contains(sb.String(), "gantt:") {
		t.Fatalf("gantt output: %q", sb.String())
	}
}
