// Command easyhps-serve runs the multi-tenant DP job service: a
// long-running HTTP server that owns one in-process EasyHPS cluster
// deployment and multiplexes concurrent DP jobs onto it.
//
// Usage:
//
//	easyhps-serve -addr :8080 -slaves 3 -threads 4 -max-jobs 2 -queue 16
//
// With -fleet the service schedules every job onto one shared elastic
// worker pool instead of the in-process deployment: workers join with
// easyhps-worker -fleet, the fair-share policy interleaves all admitted
// jobs over the pool, and /metrics gains per-job labelled series plus
// the fleet autoscaling signals (queue depth, hunger rate, deficit).
//
//	easyhps-serve -addr :8080 -fleet :9000 -max-jobs 8
//	easyhps-worker -fleet -addr localhost:9000 -threads 4
//
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"kernel":"editdist","n":400,"seed":7}'
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/v1/jobs/job-1/result
//	curl -X DELETE localhost:8080/v1/jobs/job-1
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops, queued
// jobs are cancelled, and running jobs get -drain to finish before their
// run contexts are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		slaves   = flag.Int("slaves", 3, "slave computing nodes of the cluster deployment")
		threads  = flag.Int("threads", 4, "compute goroutines per slave")
		proc     = flag.Int("proc", 0, "process_partition_size (0 = per-problem default)")
		thread   = flag.Int("thread", 0, "thread_partition_size (0 = per-problem default)")
		maxJobs  = flag.Int("max-jobs", 2, "jobs running on the cluster concurrently")
		queue    = flag.Int("queue", 16, "bounded submission queue depth (overflow answers 429)")
		maxCells = flag.Int64("max-cells", 16<<20, "largest admitted DP matrix, in cells")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running jobs")

		fleetAddr  = flag.String("fleet", "", "shared-fleet listen address (e.g. :9000): route jobs onto one elastic worker pool instead of the in-process deployment; pair with easyhps-worker -fleet")
		fleetBatch = flag.Int("fleet-batch", 1, "fleet: vertices per dispatch message")
		speculate  = flag.Bool("speculate", false, "fleet: speculatively re-execute straggling vertices")
		steal      = flag.Bool("steal", false, "fleet: feed hungry workers from loaded members' backlogs")
		auto       = flag.Bool("auto", false, "self-tune: speculation and stealing arm automatically, partitions come from each kernel's cost model, and batch/speculation thresholds adjust online (both in-process runs and the fleet); exports easyhps_tune_* gauges")

		cache         = flag.Bool("cache", false, "enable the content-addressed result cache (whole-job memoization, per-block reuse in fleet mode, content-keyed shipping suppression)")
		cacheDir      = flag.String("cache-dir", "", "cache: persist entries to this directory (empty = memory only)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 256<<20, "cache: LRU byte budget for block entries")
	)
	flag.Parse()

	run := core.Config{
		Slaves:     *slaves,
		Threads:    *threads,
		Auto:       *auto,
		RunTimeout: 15 * time.Minute,
	}
	if *proc > 0 {
		run.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		run.ThreadPartition = dag.Square(*thread)
	}

	cfg := server.ManagerConfig{
		Run:           run,
		MaxConcurrent: *maxJobs,
		QueueDepth:    *queue,
		MaxCells:      *maxCells,
	}
	var store *cas.Store
	if *cache {
		var err error
		store, err = cas.NewStore(cas.Options{Dir: *cacheDir, MaxBytes: *cacheMaxBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-serve:", err)
			os.Exit(1)
		}
		cfg.Cache = store
	}
	var fl *fleet.Fleet[int32]
	if *fleetAddr != "" {
		var err error
		fl, err = fleet.New[int32](fleet.Options{
			Addr:      *fleetAddr,
			Batch:     *fleetBatch,
			Speculate: *speculate,
			Steal:     *steal,
			Auto:      *auto,
			Cache:     store,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-serve:", err)
			os.Exit(1)
		}
		defer fl.Close()
		cfg.Fleet = fl
	}
	mgr := server.NewManager(cfg, nil)

	srv := &http.Server{Addr: *addr, Handler: server.NewHandler(mgr)}

	errc := make(chan error, 1)
	go func() {
		if fl != nil {
			fmt.Fprintf(os.Stderr, "easyhps-serve: listening on %s (shared fleet on %s, %d admission slots, queue %d)\n",
				*addr, fl.Addr(), *maxJobs, *queue)
		} else {
			fmt.Fprintf(os.Stderr, "easyhps-serve: listening on %s (cluster %dx%d, %d run slots, queue %d)\n",
				*addr, *slaves, *threads, *maxJobs, *queue)
		}
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "easyhps-serve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "easyhps-serve: %v, draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-serve: http shutdown:", err)
		}
		if err := mgr.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-serve: job drain:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "easyhps-serve: drained cleanly")
	}
}
