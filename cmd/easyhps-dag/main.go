// Command easyhps-dag inspects a DAG Pattern Model the way the paper's
// figures do: it draws the block grid, reports per-level parallelism (the
// width profile that bounds speedup), validates the model invariants, and
// can dump the precursor/data-dependency lists of a single block.
//
// Usage:
//
//	easyhps-dag -pattern triangular -rows 12 -cols 12 -block 3
//	easyhps-dag -pattern banded -width 4 -rows 32 -cols 32 -block 4
//	easyhps-dag -pattern rowcolumn -rows 20 -cols 20 -block 5 -at 2,3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dag"
)

func main() {
	var (
		pattern = flag.String("pattern", "wavefront", "pattern name: "+strings.Join(dag.LibraryNames(), ", "))
		rows    = flag.Int("rows", 16, "matrix rows")
		cols    = flag.Int("cols", 16, "matrix columns")
		bRows   = flag.Int("block", 4, "square block size (overridden by -brows/-bcols)")
		brFlag  = flag.Int("brows", 0, "block rows")
		bcFlag  = flag.Int("bcols", 0, "block cols")
		width   = flag.Int("width", 8, "band half-width (banded pattern only)")
		at      = flag.String("at", "", "dump dependencies of block \"row,col\"")
		dot     = flag.Bool("dot", false, "emit the block DAG in Graphviz DOT format and exit")
	)
	flag.Parse()

	var pat dag.Pattern
	if *pattern == dag.NameBanded {
		pat = dag.Banded{Width: *width}
	} else {
		p, ok := dag.Lookup(*pattern)
		if !ok {
			fmt.Fprintf(os.Stderr, "easyhps-dag: unknown pattern %q (have: %s)\n", *pattern, strings.Join(dag.LibraryNames(), ", "))
			os.Exit(1)
		}
		pat = p
	}

	block := dag.Size{Rows: *bRows, Cols: *bRows}
	if *brFlag > 0 {
		block.Rows = *brFlag
	}
	if *bcFlag > 0 {
		block.Cols = *bcFlag
	}
	g := dag.MatrixGeometry(dag.Size{Rows: *rows, Cols: *cols}, block)
	if *dot {
		if err := dag.WriteDOT(os.Stdout, pat, g); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-dag:", err)
			os.Exit(1)
		}
		return
	}
	gr := dag.Build(pat, g)

	fmt.Printf("pattern %s (%s): matrix %dx%d, blocks %v, grid %v, %d vertices\n",
		pat.Name(), pat.Class(), *rows, *cols, block, g.Grid, gr.N)

	if err := dag.ValidateAcyclic(pat, g); err != nil {
		fmt.Println("ACYCLICITY: ", err)
	} else if err := dag.ValidateTopology(pat, g); err != nil {
		fmt.Println("TOPOLOGY:   ", err)
	} else if err := dag.ValidateCellOrder(pat, g); err != nil {
		fmt.Println("CELL ORDER: ", err)
	} else {
		fmt.Println("model invariants: OK")
	}

	drawGrid(gr, g)
	widthProfile(gr, g)

	if *at != "" {
		var p dag.Pos
		if _, err := fmt.Sscanf(*at, "%d,%d", &p.Row, &p.Col); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-dag: -at wants \"row,col\"")
			os.Exit(1)
		}
		dumpBlock(pat, g, p)
	}
}

// drawGrid prints the block grid: '#' existing blocks, '.' holes, 'R'
// roots (immediately computable).
func drawGrid(gr *dag.Graph, g dag.Geometry) {
	roots := make(map[int32]bool)
	for _, id := range gr.Roots() {
		roots[id] = true
	}
	fmt.Println("\nblock grid ('R' root, '#' vertex, '.' hole):")
	for r := 0; r < g.Grid.Rows; r++ {
		var sb strings.Builder
		sb.WriteString("  ")
		for c := 0; c < g.Grid.Cols; c++ {
			id := g.ID(dag.Pos{Row: r, Col: c})
			switch {
			case !gr.Vertex(id).Exists:
				sb.WriteByte('.')
			case roots[id]:
				sb.WriteByte('R')
			default:
				sb.WriteByte('#')
			}
		}
		fmt.Println(sb.String())
	}
}

// widthProfile prints, for each depth level, how many vertices sit there —
// the available parallelism over time.
func widthProfile(gr *dag.Graph, g dag.Geometry) {
	level := make(map[int32]int)
	remaining := make(map[int32]int32)
	var queue []int32
	for _, id := range gr.Existing() {
		remaining[id] = gr.Vertex(id).PreCnt
		if gr.Vertex(id).PreCnt == 0 {
			queue = append(queue, id)
		}
	}
	maxLevel := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
		for _, s := range gr.Vertex(id).Post {
			if l := level[id] + 1; l > level[s] {
				level[s] = l
			}
			remaining[s]--
			if remaining[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	width := make([]int, maxLevel+1)
	for _, id := range gr.Existing() {
		width[level[id]]++
	}
	peak, sum := 0, 0
	for _, w := range width {
		if w > peak {
			peak = w
		}
		sum += w
	}
	fmt.Printf("\ndepth levels: %d, peak width: %d, mean width: %.1f\n", len(width), peak, float64(sum)/float64(len(width)))
	fmt.Print("width profile: ")
	for l, w := range width {
		if l > 0 {
			fmt.Print(" ")
		}
		fmt.Print(w)
	}
	fmt.Println()
}

// dumpBlock prints one block's rect, precursors and data region.
func dumpBlock(pat dag.Pattern, g dag.Geometry, p dag.Pos) {
	if !g.InGrid(p) || !pat.BlockExists(g, p) {
		fmt.Printf("\nblock %v does not exist\n", p)
		return
	}
	fmt.Printf("\nblock %v rect %v\n", p, g.Rect(p))
	fmt.Printf("  precursors: %v\n", pat.Precursors(g, p, nil))
	fmt.Printf("  data region: %v\n", pat.DataDeps(g, p, nil))
}
