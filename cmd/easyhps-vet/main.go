// Command easyhps-vet runs the EasyHPS project-specific static-analysis
// suite (internal/lint) over the repository: concurrency and messaging
// invariants the compiler cannot check — cancellable channel operations,
// timer hygiene in the fault-tolerance paths, no mutexes held across
// blocking operations, gob registration of transport payloads, and no
// detached contexts in library code.
//
// Usage:
//
//	easyhps-vet [-json|-sarif] [-rules ctx-select,timer-leak] [packages...]
//
// Packages default to ./... resolved against the working directory.
// -json emits findings as a JSON array; -sarif emits a SARIF 2.1.0 log
// for CI code-annotation surfaces (the two are mutually exclusive).
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("easyhps-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	ruleList := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	listRules := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "easyhps-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	all := lint.AllRules()
	if *listRules {
		for _, r := range all {
			fmt.Printf("%-20s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	rules := all
	if *ruleList != "" {
		byName := map[string]lint.Rule{}
		for _, r := range all {
			byName[r.Name()] = r
		}
		rules = nil
		for _, name := range strings.Split(*ruleList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			r, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "easyhps-vet: unknown rule %q (use -list)\n", name)
				return 2
			}
			rules = append(rules, r)
		}
		if len(rules) == 0 {
			fmt.Fprintln(os.Stderr, "easyhps-vet: -rules selected no rules")
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-vet:", err)
		return 2
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-vet:", err)
		return 2
	}

	findings := lint.NewRunner(prog.Fset, rules...).Run(prog.Pkgs)
	if *sarifOut {
		if err := lint.WriteSARIF(os.Stdout, findings, rules, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-vet:", err)
			return 2
		}
	} else if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{
				File:    relPath(cwd, f.Pos.Filename),
				Line:    f.Pos.Line,
				Rule:    f.Rule,
				Message: f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s: %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "easyhps-vet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// relPath shortens abs to a path relative to base when that is tidier.
func relPath(base, abs string) string {
	rel, err := filepath.Rel(base, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return abs
	}
	return rel
}
