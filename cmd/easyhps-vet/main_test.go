package main

import "testing"

// The SARIF encoding itself is unit-tested in internal/lint; here we
// pin the command surface: the output modes are mutually exclusive and
// the cheap flag paths exit with the documented statuses.
func TestRunFlagHandling(t *testing.T) {
	if got := run([]string{"-json", "-sarif"}); got != 2 {
		t.Errorf("run(-json -sarif) = %d, want 2 (mutually exclusive)", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-rules", "no-such-rule"}); got != 2 {
		t.Errorf("run(-rules no-such-rule) = %d, want 2", got)
	}
	if got := run([]string{"-rules", " , "}); got != 2 {
		t.Errorf("run(-rules with no names) = %d, want 2", got)
	}
}
