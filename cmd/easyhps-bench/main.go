// Command easyhps-bench regenerates the evaluation of the EasyHPS paper
// (Figures 13-17) on an emulated cluster, plus the ablations described in
// DESIGN.md. See EXPERIMENTS.md for recorded results and how to read them.
//
// Usage:
//
//	easyhps-bench -fig all                # every figure, default scale
//	easyhps-bench -fig 13 -points 4       # Fig. 13 with 4 core counts per node count
//	easyhps-bench -fig 15 -swgg 400       # bigger workload
//	easyhps-bench -ablate partition       # block-size ablation
//	easyhps-bench -verify                 # parallel == sequential sanity check
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/comm"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 13, 14, 15, 16, 17 or all")
		ablate   = flag.String("ablate", "", "ablation to run: partition, latency, singlelevel, delta, affinity, idle or all")
		verify   = flag.Bool("verify", false, "check parallel == sequential before benchmarking")
		points   = flag.Int("points", 4, "core counts per node count for figs 13/14/17 (0 = full 11-point sweep)")
		swggLen  = flag.Int("swgg", 0, "SWGG sequence length (default 224; paper used 10000)")
		nussLen  = flag.Int("nussinov", 0, "Nussinov sequence length (default 224; paper used 10000)")
		grid     = flag.Int("grid", 0, "processor-level block-grid side (default 8; paper used 50)")
		tgrid    = flag.Int("tgrid", 0, "thread-level sub-block grid side (default 14; paper used 20)")
		work     = flag.Duration("work", 0, "emulated work per cell (default 500us)")
		latBase  = flag.Duration("latency", -1, "per-message interconnect latency (default 120us)")
		latPerKB = flag.Duration("latkb", -1, "per-KB interconnect cost (default 4us)")
		seed     = flag.Int64("seed", 0, "workload seed")
		reps     = flag.Int("reps", 1, "repetitions per measured run (median reported)")
		jitter   = flag.Float64("jitter", 0, "per-sub-task work variance fraction (default 0.3; negative disables)")
	)
	flag.Parse()

	o := bench.Options{
		SWGGLen:        *swggLen,
		NussinovLen:    *nussLen,
		GridSide:       *grid,
		ThreadGridSide: *tgrid,
		WorkDelay:      *work,
		Seed:           *seed,
		Reps:           *reps,
		Jitter:         *jitter,
	}
	if *latBase >= 0 || *latPerKB >= 0 {
		lm := comm.DefaultClusterLatency
		if *latBase >= 0 {
			lm.Base = *latBase
		}
		if *latPerKB >= 0 {
			lm.PerKB = *latPerKB
		}
		if lm.Zero() {
			lm.Base = time.Nanosecond // explicit "free" network
		}
		o.Latency = lm
	}
	o = o.WithDefaults()

	w := os.Stdout
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "easyhps-bench:", err)
			os.Exit(1)
		}
	}

	if *verify {
		die(o.Verify(w))
	}

	ranSomething := *verify
	switch *fig {
	case "":
	case "13":
		die(o.Fig13(w, *points))
		ranSomething = true
	case "14":
		die(o.Fig14(w, *points))
		ranSomething = true
	case "15":
		die(o.Fig15(w))
		ranSomething = true
	case "16":
		die(o.Fig16(w))
		ranSomething = true
	case "17":
		die(o.Fig17(w, *points))
		ranSomething = true
	case "all":
		die(o.Fig13(w, *points))
		die(o.Fig14(w, *points))
		die(o.Fig15(w))
		die(o.Fig16(w))
		die(o.Fig17(w, *points))
		ranSomething = true
	default:
		die(fmt.Errorf("unknown figure %q", *fig))
	}

	switch *ablate {
	case "":
	case "partition":
		die(o.AblatePartition(w))
		ranSomething = true
	case "latency":
		die(o.AblateLatency(w))
		ranSomething = true
	case "singlelevel":
		die(o.AblateSingleLevel(w))
		ranSomething = true
	case "idle":
		die(o.IdleWhileComputable(w))
		ranSomething = true
	case "delta":
		die(o.AblateDelta(w))
		ranSomething = true
	case "affinity":
		die(o.AblateAffinity(w))
		ranSomething = true
	case "all":
		die(o.AblatePartition(w))
		die(o.AblateLatency(w))
		die(o.AblateSingleLevel(w))
		die(o.AblateDelta(w))
		die(o.AblateAffinity(w))
		die(o.IdleWhileComputable(w))
		ranSomething = true
	default:
		die(fmt.Errorf("unknown ablation %q", *ablate))
	}

	if !ranSomething {
		flag.Usage()
		os.Exit(2)
	}
}
