// Command easyhps-run executes one DP application on an in-process
// emulated EasyHPS cluster and prints the application-level result
// (alignment, structure, distance, ...) plus runtime statistics.
//
// Usage:
//
//	easyhps-run -app swgg -n 400 -slaves 3 -threads 4
//	easyhps-run -app nussinov -n 200 -policy bcw
//	easyhps-run -app matrixchain -n 300
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cas"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/seqio"
	"repro/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "swgg", "application: swgg, nussinov, editdist, lcs, knapsack, matrixchain")
		n       = flag.Int("n", 400, "matrix side length (sequence length / item count)")
		seed    = flag.Int64("seed", 1, "workload seed")
		slaves  = flag.Int("slaves", 3, "slave computing nodes")
		threads = flag.Int("threads", 4, "compute goroutines per slave")
		proc    = flag.Int("proc", 0, "process_partition_size (default n/8)")
		thread  = flag.Int("thread", 0, "thread_partition_size (default proc/4)")
		policy  = flag.String("policy", "dynamic", "scheduling policy: dynamic or bcw")
		batch   = flag.Int("batch", 1, "max ready vertices per task message (1 = classic per-vertex protocol)")
		spec    = flag.Bool("speculate", false, "dispatch speculative backups for straggling sub-tasks (first result wins)")
		steal   = flag.Bool("steal", false, "rebalance queued batch backlog toward starved slaves")
		auto    = flag.Bool("auto", false, "self-tune: enable speculation and stealing, pick the partition from the kernel's cost model, and adjust batch/speculation thresholds online (explicit -proc/-batch/... remain the starting point)")
		verbose = flag.Bool("v", false, "print runtime statistics")
		gantt   = flag.Bool("gantt", false, "print a per-slave execution timeline")
		fasta   = flag.String("fasta", "", "align the first two records of this FASTA file (swgg/editdist/lcs)")

		cache         = flag.Bool("cache", false, "probe and fill the content-addressed result cache; with -cache-dir a rerun of the same problem completes from cache")
		cacheDir      = flag.String("cache-dir", "", "cache: persist entries to this directory (empty = memory only)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 256<<20, "cache: LRU byte budget for block entries")
	)
	flag.Parse()

	cfg := core.Config{
		Slaves:     *slaves,
		Threads:    *threads,
		Batch:      *batch,
		Speculate:  *spec,
		Steal:      *steal,
		Auto:       *auto,
		RunTimeout: 15 * time.Minute,
	}
	if *proc > 0 {
		cfg.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		cfg.ThreadPartition = dag.Square(*thread)
	}
	switch *policy {
	case "dynamic":
		cfg.Policy = core.PolicyDynamic
	case "bcw":
		cfg.Policy = core.PolicyBlockCyclic
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	var rec *trace.Recorder
	if *gantt {
		rec = trace.New()
		cfg.Trace = rec
	}

	if *cache {
		if *fasta != "" {
			// The cache key is derived from app/n/seed, which does not
			// describe file contents; caching here could alias runs.
			fatal(fmt.Errorf("-cache cannot be combined with -fasta (file contents are not part of the cache key)"))
		}
		store, err := cas.NewStore(cas.Options{Dir: *cacheDir, MaxBytes: *cacheMaxBytes})
		fatal(err)
		// The same spec digest easyhps-launch uses, so a -cache-dir is
		// shared between in-process and distributed runs of one problem.
		cfg.Cache = store
		cfg.CacheKey = cluster.Spec{App: *app, N: *n, Seed: *seed, Proc: cfg.ProcPartition, Thread: cfg.ThreadPartition}.Digest()
	}

	if *app == "matrixchain" {
		runMatrixChain(*n, *seed, cfg, *verbose)
		return
	}

	var (
		prob   core.Problem[int32]
		report func(io.Writer, [][]int32)
		err    error
	)
	if *fasta != "" {
		prob, report, err = buildFromFasta(*app, *fasta)
	} else {
		prob, report, err = cli.Build(*app, *n, *seed)
	}
	fatal(err)
	res, err := core.Run(prob, cfg)
	fatal(err)
	fmt.Printf("%s on %d slaves x %d threads (%s policy): %v\n",
		prob.Name, *slaves, *threads, *policy, res.Stats.Elapsed.Round(time.Millisecond))
	report(os.Stdout, res.Matrix())
	if *verbose {
		fmt.Println(res.Stats)
	}
	if rec != nil {
		rec.Gantt(os.Stdout, 96)
	}
}

// buildFromFasta aligns the first two records of a FASTA file.
func buildFromFasta(app, path string) (core.Problem[int32], func(io.Writer, [][]int32), error) {
	recs, err := seqio.ReadFile(path)
	if err != nil {
		return core.Problem[int32]{}, nil, err
	}
	if len(recs) < 2 {
		return core.Problem[int32]{}, nil, fmt.Errorf("need two FASTA records, got %d", len(recs))
	}
	a, b := recs[0].Seq, recs[1].Seq
	switch app {
	case "swgg":
		s := dp.NewSWGG(a, b)
		return s.Problem(), func(w io.Writer, m [][]int32) {
			al := s.Traceback(m)
			fmt.Fprintf(w, "%s vs %s: local score %d\n", recs[0].ID, recs[1].ID, al.Score)
		}, nil
	case "editdist":
		e := dp.NewEditDistance(a, b)
		return e.Problem(), func(w io.Writer, m [][]int32) {
			fmt.Fprintf(w, "%s vs %s: edit distance %d\n", recs[0].ID, recs[1].ID, e.Distance(m))
		}, nil
	case "lcs":
		l := dp.NewLCS(a, b)
		return l.Problem(), func(w io.Writer, m [][]int32) {
			fmt.Fprintf(w, "%s vs %s: LCS length %d\n", recs[0].ID, recs[1].ID, m[len(a)-1][len(b)-1])
		}, nil
	}
	return core.Problem[int32]{}, nil, fmt.Errorf("-fasta supports swgg, editdist, lcs (got %q)", app)
}

// runMatrixChain handles the int64-celled application, demonstrating the
// generic runtime beyond the int32 facade.
func runMatrixChain(n int, seed int64, cfg core.Config, verbose bool) {
	m := dp.NewMatrixChain(n, 2, 100, seed)
	res, err := core.Run(m.Problem(), cfg)
	fatal(err)
	got := res.Matrix()
	fmt.Printf("matrixchain-%d: optimal multiplication cost %d (%v)\n",
		n, got[0][n-1], res.Stats.Elapsed.Round(time.Millisecond))
	if verbose {
		fmt.Println(res.Stats)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-run:", err)
		os.Exit(1)
	}
}
