// Command easyhps-worker runs one EasyHPS slave node as a separate OS
// process, connecting to an easyhps-launch master over TCP. The -app, -n,
// -seed, -proc and -thread flags must match the master's so every rank
// builds the same problem.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "master address")
		rank    = flag.Int("rank", 1, "this worker's rank (1-based)")
		workers = flag.Int("workers", 2, "total number of workers in the cluster")
		app     = flag.String("app", "swgg", "application (must match the master)")
		n       = flag.Int("n", 400, "matrix side length (must match)")
		seed    = flag.Int64("seed", 1, "workload seed (must match)")
		proc    = flag.Int("proc", 0, "process_partition_size (must match)")
		thread  = flag.Int("thread", 0, "thread_partition_size")
		threads = flag.Int("threads", 4, "compute goroutines on this worker")
		wait    = flag.Duration("wait", time.Minute, "how long to keep dialing the master")
	)
	flag.Parse()

	prob, _, err := cli.Build(*app, *n, *seed)
	fatal(err)

	tr, err := comm.DialWorker(*addr, *rank, *workers, *wait)
	fatal(err)
	defer tr.Close()

	cfg := core.Config{Threads: *threads}
	if *proc > 0 {
		cfg.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		cfg.ThreadPartition = dag.Square(*thread)
	}
	fmt.Printf("worker %d/%d connected to %s; computing %s with %d threads\n",
		*rank, *workers, *addr, prob.Name, *threads)
	fatal(core.RunSlave(prob, cfg, tr))
	fmt.Println("worker done")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-worker:", err)
		os.Exit(1)
	}
}
