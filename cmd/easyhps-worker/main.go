// Command easyhps-worker runs one EasyHPS slave node as a separate OS
// process, connecting to an easyhps-launch master over TCP.
//
// In fixed mode the -app, -n, -seed, -proc and -thread flags must match
// the master's; the join handshake carries a digest of them, so a
// mismatch is rejected at connect time with a diagnostic naming both
// sides.
//
// In elastic mode (-elastic, no -rank needed) the worker joins the
// master's membership service whenever it starts — including mid-run —
// heartbeats while alive, and departs gracefully on Ctrl-C so its
// in-flight work is reassigned immediately.
//
// In fleet mode (-fleet) the worker joins a shared fleet run by
// easyhps-serve -fleet and serves any number of concurrent jobs: kernel
// state attaches per job from the master's spec frames (validated by
// digest against the built-in registry), so no workload flags are needed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "master address")
		rank    = flag.Int("rank", 1, "fixed mode: this worker's rank (1-based)")
		workers = flag.Int("workers", 2, "fixed mode: total number of workers in the cluster")
		app     = flag.String("app", "swgg", "application (must match the master)")
		n       = flag.Int("n", 400, "matrix side length (must match)")
		seed    = flag.Int64("seed", 1, "workload seed (must match)")
		proc    = flag.Int("proc", 0, "process_partition_size (must match)")
		thread  = flag.Int("thread", 0, "thread_partition_size")
		threads = flag.Int("threads", 4, "compute goroutines on this worker")
		batch   = flag.Int("batch", 1, "flush results in groups of up to this many when the master batches tasks")
		wait    = flag.Duration("wait", time.Minute, "how long to keep dialing the master")

		elastic = flag.Bool("elastic", false, "join an elastic cluster master (ignores -rank/-workers)")
		name    = flag.String("name", "", "elastic/fleet: member name in the master's logs and metrics")
		hb      = flag.Duration("hb", 250*time.Millisecond, "elastic/fleet: heartbeat interval (must match the master)")
		hbMiss  = flag.Int("hb-miss", 3, "elastic/fleet: silent intervals before giving the master up for dead")
		steal   = flag.Bool("steal", false, "elastic/fleet: announce hunger when idle so the master steals backlog this way (pair with master -steal)")

		fleetMode = flag.Bool("fleet", false, "join a shared fleet (easyhps-serve -fleet): jobs attach dynamically, so -app/-n/-seed are ignored")
	)
	flag.Parse()

	if *fleetMode {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		fmt.Printf("joining shared fleet at %s with %d threads\n", *addr, *threads)
		opts := fleet.WorkerOptions{
			Addr:              *addr,
			Name:              *name,
			HeartbeatInterval: *hb,
			HeartbeatMiss:     *hbMiss,
			DialTimeout:       *wait,
			Run:               core.Config{Threads: *threads, Batch: *batch},
		}
		if *steal {
			opts.HungerAfter = 2 * *hb
		}
		err := fleet.RunWorker(ctx, server.RegistryBuilder(server.NewRegistry()), opts)
		if err == context.Canceled {
			fmt.Println("worker left the fleet")
			return
		}
		fatal(err)
		fmt.Println("worker done")
		return
	}

	prob, _, err := cli.Build(*app, *n, *seed)
	fatal(err)

	spec := cluster.Spec{App: *app, N: *n, Seed: *seed}
	if *proc > 0 {
		spec.Proc = dag.Square(*proc)
	}
	if *thread > 0 {
		spec.Thread = dag.Square(*thread)
	}

	if *elastic {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		fmt.Printf("joining elastic cluster at %s (spec %s) with %d threads\n", *addr, spec.Digest(), *threads)
		opts := cluster.WorkerOptions{
			Addr:              *addr,
			Spec:              spec,
			Name:              *name,
			HeartbeatInterval: *hb,
			HeartbeatMiss:     *hbMiss,
			DialTimeout:       *wait,
			Run:               core.Config{Threads: *threads, Batch: *batch},
		}
		if *steal {
			// Announce hunger after two silent heartbeat intervals: long
			// enough to prove the pool has really drained, short enough to
			// claim backlog well before a straggling peer finishes it.
			opts.HungerAfter = 2 * *hb
		}
		err := cluster.RunWorker(ctx, prob, opts)
		if err == context.Canceled {
			fmt.Println("worker left the cluster")
			return
		}
		fatal(err)
		fmt.Println("worker done")
		return
	}

	tr, err := comm.DialWorkerOpts(*addr, *rank, *workers, *wait, comm.TCPOptions{Digest: spec.Digest()})
	fatal(err)
	defer tr.Close()

	cfg := core.Config{Threads: *threads, Batch: *batch}
	if *proc > 0 {
		cfg.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		cfg.ThreadPartition = dag.Square(*thread)
	}
	fmt.Printf("worker %d/%d connected to %s; computing %s with %d threads\n",
		*rank, *workers, *addr, prob.Name, *threads)
	fatal(core.RunSlave(prob, cfg, tr))
	fmt.Println("worker done")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-worker:", err)
		os.Exit(1)
	}
}
