// Command easyhps-launch runs the EasyHPS master over real TCP: it listens
// for easyhps-worker processes, schedules the DP problem across them, and
// prints the result. Every worker must be started with identical -app, -n,
// -seed, -proc and -thread flags so all ranks build the same problem.
//
// Example (three shells):
//
//	easyhps-launch -addr :9000 -workers 2 -app swgg -n 400
//	easyhps-worker -addr 127.0.0.1:9000 -rank 1 -workers 2 -app swgg -n 400
//	easyhps-worker -addr 127.0.0.1:9000 -rank 2 -workers 2 -app swgg -n 400
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		workers = flag.Int("workers", 2, "number of worker processes to wait for")
		app     = flag.String("app", "swgg", "application (see easyhps-run)")
		n       = flag.Int("n", 400, "matrix side length")
		seed    = flag.Int64("seed", 1, "workload seed")
		proc    = flag.Int("proc", 0, "process_partition_size")
		thread  = flag.Int("thread", 0, "thread_partition_size")
		wait    = flag.Duration("wait", time.Minute, "how long to wait for workers")
	)
	flag.Parse()

	prob, report, err := cli.Build(*app, *n, *seed)
	fatal(err)

	fmt.Printf("waiting for %d workers on %s ...\n", *workers, *addr)
	tr, err := comm.ListenMaster(*addr, *workers, *wait)
	fatal(err)
	defer tr.Close()
	fmt.Println("cluster assembled; scheduling", prob.Name)

	cfg := core.Config{Threads: 1, RunTimeout: 15 * time.Minute}
	if *proc > 0 {
		cfg.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		cfg.ThreadPartition = dag.Square(*thread)
	}
	res, err := core.RunMaster(prob, cfg, tr)
	fatal(err)
	fmt.Printf("done in %v\n", res.Stats.Elapsed.Round(time.Millisecond))
	report(os.Stdout, res.Matrix())
	fmt.Println(res.Stats)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-launch:", err)
		os.Exit(1)
	}
}
