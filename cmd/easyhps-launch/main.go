// Command easyhps-launch runs the EasyHPS master over real TCP: it listens
// for easyhps-worker processes, schedules the DP problem across them, and
// prints the result.
//
// In fixed mode (-workers N) the run starts once exactly N ranks have
// joined. The join handshake carries a problem-spec digest, so a worker
// started with mismatched -app/-n/-seed/-proc/-thread flags is rejected
// with a diagnostic instead of corrupting the run.
//
// In elastic mode (-elastic) the master is a membership service instead of
// a rendezvous: workers join and leave at any time, liveness is tracked by
// heartbeats, a dead worker's tasks are reassigned, and -checkpoint makes
// completed tasks survive a master restart (see docs/CLUSTER.md).
//
// Example (three shells, elastic):
//
//	easyhps-launch -elastic -addr :9000 -min-workers 2 -app swgg -n 400 -checkpoint run.ckpt
//	easyhps-worker -elastic -addr 127.0.0.1:9000 -app swgg -n 400
//	easyhps-worker -elastic -addr 127.0.0.1:9000 -app swgg -n 400
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/cas"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		workers = flag.Int("workers", 2, "fixed mode: number of worker processes to wait for")
		app     = flag.String("app", "swgg", "application (see easyhps-run)")
		n       = flag.Int("n", 400, "matrix side length")
		seed    = flag.Int64("seed", 1, "workload seed")
		proc    = flag.Int("proc", 0, "process_partition_size")
		thread  = flag.Int("thread", 0, "thread_partition_size")
		batch   = flag.Int("batch", 1, "max ready vertices per task message (1 = classic per-vertex protocol)")
		wait    = flag.Duration("wait", time.Minute, "how long to wait for workers")

		elastic    = flag.Bool("elastic", false, "run an elastic cluster master (workers join/leave freely)")
		minWorkers = flag.Int("min-workers", 1, "elastic: members required before scheduling starts")
		hb         = flag.Duration("hb", 250*time.Millisecond, "elastic: heartbeat interval")
		hbMiss     = flag.Int("hb-miss", 3, "elastic: silent heartbeat intervals before a member is declared dead")
		ckpt       = flag.String("checkpoint", "", "elastic: checkpoint file (resumes from it when present)")
		speculate  = flag.Bool("speculate", false, "elastic: dispatch speculative backups for straggling vertices (first result wins)")
		steal      = flag.Bool("steal", false, "elastic: steal queued backlog for workers that announce hunger (pair with worker -steal)")
		auto       = flag.Bool("auto", false, "elastic: self-tune — speculation and stealing arm automatically and the batch/speculation knobs adjust online (pair with worker -steal)")

		cache         = flag.Bool("cache", false, "elastic: probe and fill the content-addressed result cache (keys scoped by the problem-spec digest)")
		cacheDir      = flag.String("cache-dir", "", "cache: persist entries to this directory, so a rerun of the same problem completes from cache")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 256<<20, "cache: LRU byte budget for block entries")
	)
	flag.Parse()

	prob, report, err := cli.Build(*app, *n, *seed)
	fatal(err)

	spec := cluster.Spec{App: *app, N: *n, Seed: *seed}
	if *proc > 0 {
		spec.Proc = dag.Square(*proc)
	}
	if *thread > 0 {
		spec.Thread = dag.Square(*thread)
	}

	var store *cas.Store
	if *cache {
		var err error
		store, err = cas.NewStore(cas.Options{Dir: *cacheDir, MaxBytes: *cacheMaxBytes})
		fatal(err)
	}

	if *elastic {
		m, err := cluster.NewMaster(prob, cluster.Options{
			Addr:              *addr,
			Spec:              spec,
			MinWorkers:        *minWorkers,
			HeartbeatInterval: *hb,
			HeartbeatMiss:     *hbMiss,
			JoinWindow:        *wait,
			CheckpointPath:    *ckpt,
			Batch:             *batch,
			Speculate:         *speculate,
			Steal:             *steal,
			Auto:              *auto,
			Cache:             store,
			RunTimeout:        15 * time.Minute,
		})
		fatal(err)
		fmt.Printf("elastic master on %s (spec %s); waiting for %d workers ...\n", m.Addr(), spec.Digest(), *minWorkers)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, err := m.Run(ctx)
		if err != nil && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "easyhps-launch: %v\nprogress is checkpointed in %s; rerun to resume\n", err, *ckpt)
			os.Exit(1)
		}
		fatal(err)
		fmt.Printf("done in %v\n", res.Stats.Elapsed.Round(time.Millisecond))
		report(os.Stdout, res.Matrix())
		fmt.Println(res.Stats)
		return
	}

	fmt.Printf("waiting for %d workers on %s ...\n", *workers, *addr)
	tr, err := comm.ListenMasterOpts(*addr, *workers, *wait, comm.TCPOptions{Digest: spec.Digest()})
	fatal(err)
	defer tr.Close()
	fmt.Println("cluster assembled; scheduling", prob.Name)

	cfg := core.Config{Threads: 1, RunTimeout: 15 * time.Minute, Batch: *batch}
	if *proc > 0 {
		cfg.ProcPartition = dag.Square(*proc)
	}
	if *thread > 0 {
		cfg.ThreadPartition = dag.Square(*thread)
	}
	if store != nil {
		cfg.Cache = store
		cfg.CacheKey = spec.Digest()
	}
	res, err := core.RunMaster(prob, cfg, tr)
	fatal(err)
	fmt.Printf("done in %v\n", res.Stats.Elapsed.Round(time.Millisecond))
	report(os.Stdout, res.Matrix())
	fmt.Println(res.Stats)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easyhps-launch:", err)
		os.Exit(1)
	}
}
